//! The GMMU / UVM driver *mechanism*: far-fault servicing, budget
//! accounting, transfer-group scheduling, and write-back.
//!
//! This is the component the whole paper studies. The GPU engine calls
//! [`Gmmu::handle_fault`] for every distinct far-fault (duplicates are
//! merged in the MSHRs before reaching the driver); the driver
//!
//! 1. pays the far-fault handling latency (45 µs, serialized across
//!    faults — the host runtime handles one fault at a time),
//! 2. asks the configured [`Prefetcher`] what to migrate along with
//!    the faulty page,
//! 3. evicts pages per the configured [`Evictor`] if the device
//!    memory budget would be exceeded (demand eviction stalls the
//!    migration behind the write-back; bulk pre-eviction does not),
//! 4. schedules the migration as transfer groups on the PCI-e read
//!    channel — the faulty page first as its own 4 KB transfer, then
//!    the prefetch groups (Sec. 3.2/3.3 fault-group/prefetch-group
//!    split),
//! 5. validates the pages and reports per-page data-ready times.
//!
//! Policy lives elsewhere: the prefetchers ([`crate::prefetch`]) and
//! evictors ([`crate::evict`]) are trait objects resolved from the
//! [`PolicyRegistry`] and observe driver state only through the
//! read-only [`ResidencyView`]. The mechanism feeds their recency /
//! frequency bookkeeping via the `on_validate`/`on_access`/
//! `on_invalidate` hooks and owns every mutation: PTEs, frames, the
//! shared TBN trees, pin state, and statistics.

use std::collections::{BTreeSet, HashMap};

use uvm_interconnect::{ChannelStats, PcieChannel, PcieModel};
use uvm_mem::{FrameAllocator, FrameId, PageTable};
use uvm_types::hash::FxBuildHasher;
use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{
    Bytes, Cycle, Duration, LargePageId, PageId, VirtAddr, PAGES_PER_LARGE_PAGE, PAGE_SIZE,
};

use crate::alloc::{AllocId, Allocations};
use crate::config::UvmConfig;
use crate::dense::{DensePageMap, DensePageSet};
use crate::evict::Evictor;
use crate::fault::{READ_CHANNEL_TAG, WRITE_CHANNEL_TAG};
use crate::indexed::IndexedPageSet;
use crate::prefetch::Prefetcher;
use crate::registry::PolicyRegistry;
use crate::spec::PolicySpec;
use crate::stats::UvmStats;
use crate::view::{ResidencyView, PIN_NONE, PIN_SOFT};

/// The result of servicing one far-fault.
#[derive(Clone, Debug)]
pub struct FaultResolution {
    /// Every page migrated for this fault (the faulty page first) with
    /// the cycle at which its data is present in device memory.
    pub ready: Vec<(PageId, Cycle)>,
    /// Pages evicted to make room (the engine shoots down their TLB
    /// entries).
    pub evicted: Vec<PageId>,
    /// Cycle at which the driver finished handling this fault (the
    /// fault-handling window, before transfers complete).
    pub handled: Cycle,
}

impl FaultResolution {
    /// Data-ready time of the faulty page itself.
    pub fn fault_page_ready(&self) -> Cycle {
        self.ready.first().expect("fault page always migrated").1
    }

    /// The pages whose cached TLB translations must be shot down: every
    /// page this fault evicted. The engine services these through its
    /// shootdown directory (generation bump + holder-slot reclamation)
    /// rather than an all-TLB broadcast.
    pub fn shootdowns(&self) -> &[PageId] {
        &self.evicted
    }
}

/// One large page's huge-mapping record. The epoch is bumped on every
/// promote *and* demote, so a TLB entry stamped with an old epoch can
/// never hit again — each splinter costs exactly one shootdown
/// generation, with no per-SM invalidation walk.
#[derive(Clone, Copy, Debug)]
struct HugeMapping {
    /// Monotonic promotion/demotion generation.
    epoch: u64,
    /// `true` while the large page is coalesced.
    mapped: bool,
    /// The huge fast-path activates only once every constituent page's
    /// migration has landed (max in-flight arrival at promotion time).
    active_from: Cycle,
}

/// The GMMU and UVM software-runtime model.
///
/// # Examples
///
/// ```
/// use uvm_core::{Gmmu, UvmConfig};
/// use uvm_types::{Bytes, Cycle};
///
/// let mut gmmu = Gmmu::new(UvmConfig::default());
/// let base = gmmu.malloc_managed(Bytes::mib(2));
/// let res = gmmu.handle_fault(base.page(), Cycle::ZERO);
/// assert!(gmmu.is_resident(base.page()));
/// assert!(res.fault_page_ready() > Cycle::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct Gmmu {
    cfg: UvmConfig,
    rng: SmallRng,
    /// RNG for the driver-side fault injections (latency jitter,
    /// transient migration failures, pressure mode). Separate from
    /// `rng` so arming a `FaultPlan` never perturbs policy decisions,
    /// and never drawn when the plan is inert.
    fault_rng: SmallRng,
    allocs: Allocations,
    page_table: PageTable,
    frames: FrameAllocator,
    /// Dense page-indexed frame table: the allocator hands out a small
    /// dense page range, so a `Vec` beats a `HashMap` on every access.
    frame_of: DensePageMap<FrameId>,
    /// The configured prefetch policy (owns its learning state).
    prefetcher: Box<dyn Prefetcher>,
    /// The configured eviction policy (owns its recency bookkeeping,
    /// fed through the on_validate/on_access/on_invalidate hooks).
    evictor: Box<dyn Evictor>,
    /// All resident pages, for random eviction and fallbacks.
    resident: IndexedPageSet,
    read_chan: PcieChannel,
    write_chan: PcieChannel,
    /// Next-free instants of the host runtime's fault-handling lanes
    /// (`cfg.fault_lanes` of them); a fault occupies the earliest lane.
    lanes: Vec<Cycle>,
    /// Sticky prefetcher kill-switch (over-subscription rule).
    prefetch_disabled: bool,
    /// Data-arrival times of in-flight (validated, still transferring)
    /// pages. An entry is dropped on the page's first access (its
    /// waiter replayed: the arrival grace pin did its job), on expel,
    /// or on re-admit — [`ready_time`](Self::ready_time) itself is a
    /// pure read.
    ready_at: DensePageMap<Cycle>,
    /// Prefetched pages not yet accessed (for accuracy accounting).
    unaccessed_prefetch: DensePageSet,
    /// Demand-migrated pages whose faulting warp has not yet replayed:
    /// hard-pinned from eviction so every far-fault is guaranteed to
    /// complete at least one access (bounding faults by accesses and
    /// making eviction/refault livelock impossible).
    unaccessed_demand: DensePageSet,
    /// Pages that have been evicted at least once (thrash detection).
    evicted_once: DensePageSet,
    /// Huge-mapping records, kept across demotions so epochs only ever
    /// grow (stale huge TLB entries can never hit again).
    huge: HashMap<LargePageId, HugeMapping, FxBuildHasher>,
    /// The currently coalesced large pages (ordered for deterministic
    /// policy scans through the view).
    huge_mapped: BTreeSet<LargePageId>,
    /// Per-large-page resident counts, maintained only while a
    /// huge-page policy is active (see [`Self::lp_tracking`]).
    lp_resident: HashMap<LargePageId, u32, FxBuildHasher>,
    /// Soft-reserved 2 MB frame-region base per large page.
    region_of: HashMap<LargePageId, u64, FxBuildHasher>,
    /// `true` while the prefetcher requests contiguous placement —
    /// the gate on every huge-page code path, so legacy policies keep
    /// the exact pre-existing allocation and mapping behavior.
    huge_enabled: bool,
    /// Far-fault stream capture for trace export: `(cycle, page)` per
    /// serviced fault. `None` (the default) records nothing and costs
    /// nothing, so runs without export stay bit-identical.
    fault_trace: Option<Vec<(Cycle, PageId)>>,
    stats: UvmStats,
}

impl Gmmu {
    /// Creates a driver with the given configuration and an idle PCI-e
    /// link calibrated to the paper's Table 1. The prefetcher and
    /// evictor are built from the global [`PolicyRegistry`] using the
    /// configured policy specs.
    ///
    /// # Panics
    ///
    /// Panics if either spec does not resolve (unknown name/parameter,
    /// bad value, unreadable table file). CLI layers validate specs at
    /// parse time, so reaching this is a programming error.
    pub fn new(cfg: UvmConfig) -> Self {
        let registry = PolicyRegistry::global();
        let prefetcher = registry
            .build_prefetcher_spec(&cfg.prefetch, &cfg)
            .unwrap_or_else(|e| panic!("building prefetcher: {e}"));
        let evictor = registry
            .build_evictor_spec(&cfg.evict, &cfg)
            .unwrap_or_else(|e| panic!("building evictor: {e}"));
        Self::with_policies(cfg, prefetcher, evictor)
    }

    /// Creates a driver running explicit policy instances — the
    /// third-party seam: any [`Prefetcher`]/[`Evictor`] implementation
    /// plugs in here without the mechanism knowing its name. The
    /// `cfg.prefetch`/`cfg.evict` selectors are ignored.
    pub fn with_policies(
        cfg: UvmConfig,
        prefetcher: Box<dyn Prefetcher>,
        evictor: Box<dyn Evictor>,
    ) -> Self {
        let capacity = cfg.capacity.unwrap_or(Bytes::gib(1024));
        let mut read_chan = PcieChannel::new(PcieModel::pascal_x16());
        if let Some(fc) = cfg.fault_plan.channel_faults(READ_CHANNEL_TAG) {
            read_chan = read_chan.with_transfer_faults(fc);
        }
        let mut write_chan = PcieChannel::new(PcieModel::pascal_x16());
        if let Some(fc) = cfg.fault_plan.channel_faults(WRITE_CHANNEL_TAG) {
            write_chan = write_chan.with_transfer_faults(fc);
        }
        let huge_enabled = prefetcher.wants_contiguous_placement();
        Gmmu {
            rng: SmallRng::seed_from_u64(cfg.rng_seed),
            fault_rng: SmallRng::seed_from_u64(cfg.fault_plan.seed ^ 0xDE7E_12F1_7A51_0000),
            allocs: Allocations::new(),
            page_table: PageTable::new(),
            frames: FrameAllocator::new(capacity),
            frame_of: DensePageMap::new(),
            prefetcher,
            evictor,
            resident: IndexedPageSet::new(),
            read_chan,
            write_chan,
            lanes: vec![Cycle::ZERO; cfg.fault_lanes.max(1)],
            prefetch_disabled: false,
            unaccessed_prefetch: DensePageSet::new(),
            unaccessed_demand: DensePageSet::new(),
            ready_at: DensePageMap::new(),
            evicted_once: DensePageSet::new(),
            huge: HashMap::default(),
            huge_mapped: BTreeSet::new(),
            lp_resident: HashMap::default(),
            region_of: HashMap::default(),
            huge_enabled,
            fault_trace: None,
            stats: UvmStats::new(),
            cfg,
        }
    }

    /// Starts capturing the far-fault stream (`(cycle, page)` per
    /// fault) for trace export. Off by default; when off the fault
    /// path does no extra work.
    pub fn enable_fault_trace(&mut self) {
        self.fault_trace.get_or_insert_with(Vec::new);
    }

    /// Takes the captured fault stream, leaving capture enabled (and
    /// empty). Returns an empty vec if capture was never enabled.
    pub fn take_fault_trace(&mut self) -> Vec<(Cycle, PageId)> {
        match self.fault_trace.as_mut() {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    /// Swaps the live policies for freshly built ones mid-simulation —
    /// the warm-up → measurement transition of forked sweeps.
    ///
    /// The new prefetcher starts with empty learning state. The new
    /// evictor is reseeded by replaying `on_validate` for every
    /// resident page in ascending page order (the bitmap-scan order,
    /// which depends only on the resident set), so recency/frequency
    /// bookkeeping starts from a deterministic, representation-
    /// independent baseline. Mechanism state — residency, frame
    /// tables, PCI-e backlog, the RNG streams, the sticky prefetcher
    /// kill-switch, statistics — carries over untouched.
    ///
    /// The swap is applied *unconditionally* (even when the specs
    /// equal the current policies), so a cold warmed run and a
    /// fork-resumed run perform the identical transition and stay
    /// byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if either spec does not resolve (see [`Gmmu::new`]).
    pub fn swap_policies(&mut self, prefetch: impl Into<PolicySpec>, evict: impl Into<PolicySpec>) {
        let registry = PolicyRegistry::global();
        self.cfg.prefetch = prefetch.into();
        self.cfg.evict = evict.into();
        self.prefetcher = registry
            .build_prefetcher_spec(&self.cfg.prefetch, &self.cfg)
            .unwrap_or_else(|e| panic!("building prefetcher: {e}"));
        let mut evictor = registry
            .build_evictor_spec(&self.cfg.evict, &self.cfg)
            .unwrap_or_else(|e| panic!("building evictor: {e}"));
        for page in self.resident.iter_ascending() {
            evictor.on_validate(page);
        }
        self.evictor = evictor;
        // Huge-page state transition: the incoming pair starts from
        // plain 4 KB mappings (epoch bumps make any cached huge TLB
        // entries unhittable), and the per-large-page residency counts
        // are rebuilt from the resident set — deterministic regardless
        // of migration history, mirroring the evictor reseed above.
        let mapped: Vec<LargePageId> = self.huge_mapped.iter().copied().collect();
        for lp in mapped {
            self.demote(lp);
        }
        self.huge_enabled = self.prefetcher.wants_contiguous_placement();
        self.lp_resident.clear();
        if self.lp_tracking() {
            let Gmmu {
                resident,
                lp_resident,
                ..
            } = self;
            for page in resident.iter_ascending() {
                *lp_resident.entry(page.large_page()).or_insert(0) += 1;
            }
            let stale: Vec<(LargePageId, u64)> = self
                .region_of
                .iter()
                .filter(|(lp, _)| !self.lp_resident.contains_key(lp))
                .map(|(&lp, &base)| (lp, base))
                .collect();
            for (lp, base) in stale {
                self.region_of.remove(&lp);
                self.frames.release_region(base);
            }
        }
        // Coalesce on full residency, applied to the inherited
        // placement: large pages the previous policies happened to
        // leave fully resident *and* physically contiguous (e.g. a
        // frontier-sequential warm-up before eviction fragmented the
        // pool) are promotable immediately — without this sweep a
        // coalescing pair swapped in at capacity could never form a
        // huge page, since no free 2 MB region survives steady state.
        if self.huge_enabled {
            let mut full: Vec<LargePageId> = self
                .lp_resident
                .iter()
                .filter(|&(_, &count)| u64::from(count) == PAGES_PER_LARGE_PAGE)
                .map(|(&lp, _)| lp)
                .collect();
            full.sort_unstable();
            for lp in full {
                self.maybe_promote(lp);
            }
        }
    }

    /// Registers a managed allocation (the `cudaMallocManaged`
    /// analogue) and returns its base virtual address.
    pub fn malloc_managed(&mut self, size: Bytes) -> VirtAddr {
        let id = self.allocs.allocate(size);
        self.allocs.get(id).base()
    }

    /// Registers a managed allocation and returns its id.
    pub fn malloc_managed_id(&mut self, size: Bytes) -> AllocId {
        self.allocs.allocate(size)
    }

    /// The allocation registry.
    pub fn allocations(&self) -> &Allocations {
        &self.allocs
    }

    /// `true` if `page` has a valid PTE (its data may still be in
    /// flight; see [`ready_time`](Self::ready_time)).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.page_table.is_valid(page)
    }

    /// If `page`'s migration is still in flight at `now`, the cycle at
    /// which its data arrives. A pure read: in-flight entries are
    /// cleared when the page is accessed, expelled, or re-admitted —
    /// never by querying.
    pub fn ready_time(&self, page: PageId, now: Cycle) -> Option<Cycle> {
        self.ready_at.get(page).filter(|&t| t > now)
    }

    /// Records a warp access to a resident page: sets PTE flags,
    /// notifies the eviction policy's bookkeeping, and updates the
    /// prefetch-accuracy accounting.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not resident (the engine must fault first).
    pub fn record_access(&mut self, page: PageId, write: bool) {
        self.stats.accesses += 1;
        self.page_table.mark_access(page, write);
        self.evictor.on_access(page);
        // The arrival grace pin protects a migrated page until its
        // waiter actually uses it; the first access consumes it.
        self.ready_at.remove(page);
        self.unaccessed_demand.remove(page);
        if self.unaccessed_prefetch.remove(page) {
            self.stats.prefetched_used += 1;
        }
    }

    /// Services one distinct far-fault on `page` raised at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident, lies outside every managed
    /// allocation, or the device memory budget cannot accommodate the
    /// migration even after eviction.
    pub fn handle_fault(&mut self, page: PageId, now: Cycle) -> FaultResolution {
        assert!(
            !self.page_table.is_valid(page),
            "far-fault on already-resident {page}"
        );
        let alloc_id = self
            .allocs
            .find_by_page(page)
            .unwrap_or_else(|| panic!("far-fault on unmanaged {page}"))
            .id();

        self.stats.far_faults += 1;
        if let Some(trace) = self.fault_trace.as_mut() {
            trace.push((now, page));
        }
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one lane");
        let mut handled = self.lanes[lane].max(now) + self.cfg.fault_latency;
        let plan = self.cfg.fault_plan;
        // Injected far-fault latency jitter: up to +jitter_frac of the
        // base handling latency, uniform. Zero fractions never draw.
        if plan.latency_jitter_frac > 0.0 {
            let u = (self.fault_rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let extra = (self.cfg.fault_latency.cycles() as f64 * plan.latency_jitter_frac * u)
                .round() as u64;
            handled += Duration::from_cycles(extra);
            self.stats.fault_injection.jitter_cycles += extra;
        }
        // Injected transient migration failures: each failed attempt
        // re-enters the fault pipeline as a replayable fault and pays
        // another full handling window on the same lane, bounded by
        // the plan's replay budget.
        if plan.migration_fail_prob > 0.0 {
            let mut attempts = 0u32;
            while self.fault_rng.gen_bool(plan.migration_fail_prob) {
                if attempts >= plan.migration_max_retries {
                    self.stats.fault_injection.migration_giveups += 1;
                    break;
                }
                attempts += 1;
                self.stats.fault_injection.migration_retries += 1;
                handled += self.cfg.fault_latency;
            }
        }
        self.lanes[lane] = handled;

        // Injected oversubscription pressure: with probability
        // `pressure_prob` a fault lands while the host runtime is
        // reclaiming memory, forcing emergency eviction down to the
        // plan's free-frame target before the fault proceeds. Only
        // meaningful under a finite device budget.
        let mut evicted = Vec::new();
        if plan.pressure_prob > 0.0
            && self.cfg.capacity.is_some()
            && self.fault_rng.gen_bool(plan.pressure_prob)
        {
            let target =
                (plan.pressure_free_frac * self.frames.capacity_frames() as f64).ceil() as u64;
            while self.frames.free_frames() < target {
                let Some((pages, _)) = self.evict_once(handled, now) else {
                    break;
                };
                self.stats.fault_injection.emergency_evictions += pages.len() as u64;
                evicted.extend(pages);
            }
        }

        // Make room for the faulty page. Only the *demand* page forces
        // eviction; demand eviction (LRU/Random 4 KB) stalls the
        // migration behind the write-back, pre-eviction does not.
        // Victim pinning is evaluated at the fault's *arrival* time:
        // state mutates now, so a page whose waiter has not yet been
        // able to replay (its data lands later) must stay protected.
        let (demand_evicted, wb_barrier) = self.ensure_frames(1, handled, now);
        evicted.extend(demand_evicted);

        // The prefetcher fills only frames that are free after demand
        // eviction — aggressive prefetching that displaces resident
        // pages is counterproductive (Sec. 4.2). Bulk pre-eviction is
        // exactly what re-enables prefetching under over-subscription
        // (Sec. 5): evicting 64 KB–1 MB for one demand page leaves
        // room for the matching prefetch.
        // Prefetch is throttled when the read channel is congested:
        // a backlog beyond the configured cap means prefetch traffic
        // is already outpacing the link.
        let backlog = self.read_chan.next_free().since(handled);
        let congested = backlog > self.cfg.prefetch_congestion_cap;
        let mut prefetch = if self.prefetch_disabled || congested {
            Vec::new()
        } else {
            let lp_tracking = self.lp_tracking();
            let Gmmu {
                prefetcher,
                rng,
                page_table,
                allocs,
                resident,
                ready_at,
                unaccessed_demand,
                cfg,
                huge_mapped,
                lp_resident,
                ..
            } = self;
            let view = ResidencyView::new(
                page_table,
                allocs,
                resident,
                ready_at,
                unaccessed_demand,
                cfg.reserve_frac,
                huge_mapped,
                lp_resident,
                lp_tracking,
            );
            prefetcher.plan(&view, rng, page, alloc_id)
        };
        let mut room = self.frames.free_frames().saturating_sub(1);
        for group in &mut prefetch {
            let keep = (room as usize).min(group.len());
            group.truncate(keep);
            room -= keep as u64;
        }
        prefetch.retain(|g| !g.is_empty());
        let prefetch_pages: usize = prefetch.iter().map(Vec::len).sum();
        let needed = 1 + prefetch_pages as u64;
        debug_assert!(needed <= self.frames.free_frames());

        let mut migrate_from = handled;
        if let Some(barrier) = wb_barrier {
            migrate_from = migrate_from.max(barrier);
        }

        // Fault group first (4 KB), then the prefetch groups.
        let mut ready = Vec::with_capacity(needed as usize);
        let t = self.schedule_read(migrate_from, PAGE_SIZE);
        self.admit_page(page, t, false);
        ready.push((page, t));
        let mut last_finish = t;
        for group in prefetch {
            let size = PAGE_SIZE * group.len() as u64;
            let t = self.schedule_read(migrate_from, size);
            last_finish = last_finish.max(t);
            for p in group {
                self.admit_page(p, t, true);
                ready.push((p, t));
            }
        }
        // The fault is retired only once its migration completes: the
        // host runtime's lane stays occupied until the copy lands, so
        // fault admission throttles to PCI-e throughput instead of
        // racing unboundedly ahead of data arrival.
        self.lanes[lane] = self.lanes[lane].max(last_finish);

        self.promote_candidates(&ready);
        self.sync_frame_stats();
        self.update_prefetch_kill_switch();
        FaultResolution {
            ready,
            evicted,
            handled,
        }
    }

    /// The `cudaMemPrefetchAsync` analogue (Sec. 3): asynchronously
    /// migrates every non-resident page of `[start, start+size)` to the
    /// device, overlapping kernel execution. Contiguous invalid runs
    /// are grouped into transfers of up to 2 MB. Unlike a far-fault
    /// there is no 45 µs handling window — the host initiated the copy.
    ///
    /// Returns the `(page, data-ready cycle)` pairs of the migrated
    /// pages. Pages outside any managed allocation are skipped.
    ///
    /// # Panics
    ///
    /// Panics if making room requires evicting when every resident page
    /// is hard-pinned (budget far too small).
    pub fn mem_prefetch_async(
        &mut self,
        start: VirtAddr,
        size: Bytes,
        now: Cycle,
    ) -> Vec<(PageId, Cycle)> {
        let first = start.page().index();
        let last = if size == Bytes::ZERO {
            first
        } else {
            start.offset(size - Bytes::new(1)).page().index() + 1
        };
        let mut ready = Vec::new();
        let mut run: Vec<PageId> = Vec::new();
        let flush = |gmmu: &mut Self, run: &mut Vec<PageId>, ready: &mut Vec<(PageId, Cycle)>| {
            if run.is_empty() {
                return;
            }
            for chunk in run.chunks(PAGES_PER_LARGE_PAGE as usize) {
                let (_, barrier) = gmmu.ensure_frames(chunk.len() as u64, now, now);
                let at = barrier.map_or(now, |b| b.max(now));
                let t = gmmu.schedule_read(at, PAGE_SIZE * chunk.len() as u64);
                for &p in chunk {
                    gmmu.admit_page(p, t, true);
                    ready.push((p, t));
                }
            }
            run.clear();
        };
        for idx in first..last {
            let page = PageId::new(idx);
            let in_alloc = self.allocs.find_by_page(page).is_some();
            if in_alloc && !self.page_table.is_valid(page) {
                run.push(page);
            } else {
                flush(self, &mut run, &mut ready);
            }
        }
        flush(self, &mut run, &mut ready);
        self.promote_candidates(&ready);
        self.sync_frame_stats();
        self.update_prefetch_kill_switch();
        ready
    }

    /// Driver-side statistics.
    pub fn stats(&self) -> &UvmStats {
        &self.stats
    }

    /// Host→device (migration) channel statistics.
    pub fn read_stats(&self) -> &ChannelStats {
        self.read_chan.stats()
    }

    /// Device→host (write-back) channel statistics.
    pub fn write_stats(&self) -> &ChannelStats {
        self.write_chan.stats()
    }

    /// Resident page count.
    pub fn resident_pages(&self) -> u64 {
        self.page_table.valid_pages()
    }

    /// Device memory frame budget.
    pub fn capacity_frames(&self) -> u64 {
        self.frames.capacity_frames()
    }

    /// `true` once the over-subscription rule has disabled the
    /// prefetcher.
    pub fn prefetch_disabled(&self) -> bool {
        self.prefetch_disabled
    }

    /// The earliest instant a fault-handling lane becomes free.
    pub fn driver_free(&self) -> Cycle {
        self.lanes.iter().copied().min().unwrap_or(Cycle::ZERO)
    }

    /// The configuration in force.
    pub fn config(&self) -> &UvmConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Transfer scheduling (fault-aware wrappers)
    // ------------------------------------------------------------------

    /// Schedules a host→device transfer and folds any injected replay
    /// activity into the driver's fault-injection counters.
    fn schedule_read(&mut self, at: Cycle, size: Bytes) -> Cycle {
        let t = self.read_chan.schedule(at, size);
        self.stats.fault_injection.transfer_retries += t.retries as u64;
        if t.gave_up {
            self.stats.fault_injection.transfer_giveups += 1;
        }
        t.finish
    }

    /// Schedules a device→host write-back; see [`Self::schedule_read`].
    fn schedule_write(&mut self, at: Cycle, size: Bytes) -> Cycle {
        let t = self.write_chan.schedule(at, size);
        self.stats.fault_injection.transfer_retries += t.retries as u64;
        if t.gave_up {
            self.stats.fault_injection.transfer_giveups += 1;
        }
        t.finish
    }

    // ------------------------------------------------------------------
    // Eviction mechanism
    // ------------------------------------------------------------------

    /// Frees frames until `needed` are available at driver time `t`.
    /// Returns the evicted pages and, for demand-eviction policies, the
    /// write-back completion barrier the migration must wait for.
    fn ensure_frames(
        &mut self,
        needed: u64,
        wb_time: Cycle,
        pin_time: Cycle,
    ) -> (Vec<PageId>, Option<Cycle>) {
        assert!(
            needed <= self.frames.capacity_frames(),
            "migration of {needed} pages exceeds total device memory"
        );
        let mut evicted = Vec::new();
        let mut barrier: Option<Cycle> = None;
        // Memory-threshold pre-eviction: keep the free-page buffer
        // topped up before anything else (Sec. 4.2). Buffer top-up is
        // asynchronous: it never stalls the migration.
        if self.cfg.free_buffer_frac > 0.0 {
            let buffer =
                (self.cfg.free_buffer_frac * self.frames.capacity_frames() as f64).ceil() as u64;
            while self.frames.free_frames() < buffer.max(needed) {
                let Some((pages, _)) = self.evict_once(wb_time, pin_time) else {
                    break;
                };
                evicted.extend(pages);
            }
        }
        while self.frames.free_frames() < needed {
            let Some((pages, wb_finish)) = self.evict_once(wb_time, pin_time) else {
                panic!(
                    "cannot evict: every resident page is a demand page \
                     awaiting its faulting warp ({} resident, {} free, \
                     {needed} needed) — the device budget is too small \
                     for the configured concurrency",
                    self.resident.len(),
                    self.frames.free_frames()
                );
            };
            if !self.evictor.is_pre_eviction() {
                barrier = Some(barrier.map_or(wb_finish, |b| b.max(wb_finish)));
            }
            evicted.extend(pages);
        }
        (evicted, barrier)
    }

    /// Runs one eviction operation: asks the policy for victim groups,
    /// schedules their write-back, and invalidates them. Returns the
    /// evicted pages and the write-back finish time, or `None` if no
    /// victim is eligible.
    fn evict_once(&mut self, wb_time: Cycle, pin_time: Cycle) -> Option<(Vec<PageId>, Cycle)> {
        // Splinter before selecting victims (the Mosaic ordering): the
        // policy may demote one coalesced large page per eviction
        // operation so its pages become individually evictable without
        // a forced demotion.
        if !self.huge_mapped.is_empty() {
            let splinter = {
                let lp_tracking = self.lp_tracking();
                let Gmmu {
                    evictor,
                    rng,
                    page_table,
                    allocs,
                    resident,
                    ready_at,
                    unaccessed_demand,
                    cfg,
                    huge_mapped,
                    lp_resident,
                    ..
                } = self;
                let view = ResidencyView::new(
                    page_table,
                    allocs,
                    resident,
                    ready_at,
                    unaccessed_demand,
                    cfg.reserve_frac,
                    huge_mapped,
                    lp_resident,
                    lp_tracking,
                );
                evictor.select_splinter(&view, rng, pin_time)
            };
            if let Some(lp) = splinter {
                if self.demote(lp) {
                    self.stats.huge_pages.splinters += 1;
                }
            }
        }
        // Prefer fully unpinned victims; fall back to soft-pinned
        // (in-flight prefetched) pages. Hard-pinned demand pages are
        // never victims.
        let groups = {
            let lp_tracking = self.lp_tracking();
            let Gmmu {
                evictor,
                rng,
                page_table,
                allocs,
                resident,
                ready_at,
                unaccessed_demand,
                cfg,
                huge_mapped,
                lp_resident,
                ..
            } = self;
            let view = ResidencyView::new(
                page_table,
                allocs,
                resident,
                ready_at,
                unaccessed_demand,
                cfg.reserve_frac,
                huge_mapped,
                lp_resident,
                lp_tracking,
            );
            evictor
                .select_victims(&view, rng, pin_time, PIN_NONE)
                .or_else(|| evictor.select_victims(&view, rng, pin_time, PIN_SOFT))?
        };
        let mut all = Vec::new();
        let mut finish = wb_time;
        for group in groups {
            if self.cfg.writeback_dirty_only {
                // Ablation: transfer only the dirty pages, one transfer
                // per contiguous dirty run — less write traffic, worse
                // per-transfer bandwidth.
                let mut run = 0u64;
                for &p in &group {
                    if self.page_table.flags(p).dirty {
                        run += 1;
                    } else if run > 0 {
                        let wb = self.schedule_write(wb_time, PAGE_SIZE * run);
                        finish = finish.max(wb);
                        run = 0;
                    }
                }
                if run > 0 {
                    let wb = self.schedule_write(wb_time, PAGE_SIZE * run);
                    finish = finish.max(wb);
                }
            } else {
                // The paper's design choice: the whole group is written
                // back as a single unit irrespective of clean/dirty
                // pages (Sec. 5.1).
                let size = PAGE_SIZE * group.len() as u64;
                let wb = self.schedule_write(wb_time, size);
                finish = finish.max(wb);
            }
            for &p in &group {
                self.expel_page(p);
            }
            all.extend(group);
        }
        if all.is_empty() {
            None
        } else {
            self.stats.evictions += 1;
            Some((all, finish))
        }
    }

    // ------------------------------------------------------------------
    // Page state transitions
    // ------------------------------------------------------------------

    /// Makes `page` resident: allocates a frame, validates the PTE,
    /// and registers it in every tracking structure (including the
    /// eviction policy's bookkeeping and the shared TBN trees).
    fn admit_page(&mut self, page: PageId, ready: Cycle, prefetched: bool) {
        let frame = self.allocate_frame_for(page);
        self.frame_of.insert(page, frame);
        self.page_table.validate(page);
        self.resident.insert(page);
        self.evictor.on_validate(page);
        self.ready_at.insert(page, ready);
        if prefetched {
            self.unaccessed_prefetch.insert(page);
        } else {
            self.unaccessed_demand.insert(page);
        }
        if let Some(alloc) = self.allocs.find_by_block_mut(page.basic_block()) {
            if let Some(tree) = alloc.tree_for_block_mut(page.basic_block()) {
                tree.add_pages(page.basic_block(), 1);
            }
        }
        self.stats.pages_migrated += 1;
        if prefetched {
            self.stats.pages_prefetched += 1;
        }
        if self.evicted_once.contains(page) {
            self.stats.pages_thrashed += 1;
        }
        if self.lp_tracking() {
            *self.lp_resident.entry(page.large_page()).or_insert(0) += 1;
        }
    }

    /// Removes `page` from residency and every tracking structure.
    fn expel_page(&mut self, page: PageId) {
        let lp = page.large_page();
        if self.huge_mapped.contains(&lp) {
            // Eviction reached into a coalesced large page the policy
            // did not splinter first: force the demotion (Mosaic's
            // safety net — correctness never depends on the policy).
            self.demote(lp);
            self.stats.huge_pages.forced_splinters += 1;
        }
        let flags = self.page_table.invalidate(page);
        assert!(flags.valid, "expel of non-resident {page}");
        if !flags.dirty {
            self.stats.clean_pages_written_back += 1;
        }
        if self.unaccessed_prefetch.remove(page) {
            self.stats.prefetched_wasted += 1;
        }
        let frame = self
            .frame_of
            .remove(page)
            .expect("resident page has a frame");
        self.frames
            .free(frame)
            .expect("resident page owns a live frame");
        self.resident.remove(page);
        self.evictor.on_invalidate(page);
        self.ready_at.remove(page);
        self.unaccessed_demand.remove(page);
        if let Some(alloc) = self.allocs.find_by_block_mut(page.basic_block()) {
            if let Some(tree) = alloc.tree_for_block_mut(page.basic_block()) {
                tree.remove_pages(page.basic_block(), 1);
            }
        }
        self.evicted_once.insert(page);
        self.stats.pages_evicted += 1;
        if self.lp_tracking() {
            if let Some(count) = self.lp_resident.get_mut(&lp) {
                *count -= 1;
                if *count == 0 {
                    self.lp_resident.remove(&lp);
                    // The large page drained: hand its soft-reserved
                    // frame region back as one reusable 2 MB block.
                    if let Some(base) = self.region_of.remove(&lp) {
                        self.frames.release_region(base);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Huge-page mechanism (coalesce / splinter)
    // ------------------------------------------------------------------

    /// `true` while per-large-page residency counts are maintained:
    /// whenever a huge-page policy is active, and — after a swap away
    /// from one — until every soft-reserved frame region has drained.
    fn lp_tracking(&self) -> bool {
        self.huge_enabled || !self.region_of.is_empty()
    }

    /// Allocates the frame backing `page`. Legacy policies take the
    /// exact pre-existing single-frame path; a contiguity-requesting
    /// prefetcher gets region placement instead: the page's 2 MB range
    /// is soft-reserved on first touch and each page lands at
    /// `region_base + offset` — the physical contiguity a later
    /// coalesce requires.
    fn allocate_frame_for(&mut self, page: PageId) -> FrameId {
        if self.huge_enabled {
            let lp = page.large_page();
            let offset = page.index() - lp.first_page().index();
            if let Some(&base) = self.region_of.get(&lp) {
                if let Some(frame) = self.frames.allocate_in_region(base, offset) {
                    return frame;
                }
            } else if let Some(base) = self.frames.reserve_region() {
                self.region_of.insert(lp, base);
                if let Some(frame) = self.frames.allocate_in_region(base, offset) {
                    return frame;
                }
            }
            // Slot stolen or no contiguous 2 MB range left: fall back
            // to a plain frame — the large page loses its shot at
            // coalescing, never its residency.
        }
        self.frames
            .allocate()
            .expect("ensure_frames guaranteed capacity")
    }

    /// Considers every large page `ready` touched for promotion.
    fn promote_candidates(&mut self, ready: &[(PageId, Cycle)]) {
        if !self.huge_enabled {
            return;
        }
        let mut lps: Vec<LargePageId> = ready.iter().map(|&(p, _)| p.large_page()).collect();
        lps.sort_unstable();
        lps.dedup();
        for lp in lps {
            self.maybe_promote(lp);
        }
    }

    /// Promotes `lp` to a single huge mapping if the mechanism's
    /// preconditions hold — fully resident on a physically contiguous,
    /// 2 MB-aligned frame range — and the prefetcher's
    /// [`should_coalesce`](Prefetcher::should_coalesce) approves.
    fn maybe_promote(&mut self, lp: LargePageId) {
        if self.huge_mapped.contains(&lp) {
            return;
        }
        if u64::from(self.lp_resident.get(&lp).copied().unwrap_or(0)) != PAGES_PER_LARGE_PAGE {
            return;
        }
        let first = lp.first_page();
        let Some(base) = self.frame_of.get(first).map(FrameId::index) else {
            return;
        };
        if base % PAGES_PER_LARGE_PAGE != 0 {
            return;
        }
        for k in 1..PAGES_PER_LARGE_PAGE {
            if self.frame_of.get(first.add(k)).map(FrameId::index) != Some(base + k) {
                return;
            }
        }
        let approved = {
            let lp_tracking = self.lp_tracking();
            let Gmmu {
                prefetcher,
                page_table,
                allocs,
                resident,
                ready_at,
                unaccessed_demand,
                cfg,
                huge_mapped,
                lp_resident,
                ..
            } = self;
            let view = ResidencyView::new(
                page_table,
                allocs,
                resident,
                ready_at,
                unaccessed_demand,
                cfg.reserve_frac,
                huge_mapped,
                lp_resident,
                lp_tracking,
            );
            prefetcher.should_coalesce(&view, lp)
        };
        if !approved {
            return;
        }
        // The huge fast-path activates only once every constituent
        // page's migration has landed (accessed pages have no in-flight
        // entry: their data is already present).
        let mut active_from = Cycle::ZERO;
        for k in 0..PAGES_PER_LARGE_PAGE {
            if let Some(t) = self.ready_at.get(first.add(k)) {
                active_from = active_from.max(t);
            }
        }
        let mapping = self.huge.entry(lp).or_insert(HugeMapping {
            epoch: 0,
            mapped: false,
            active_from: Cycle::ZERO,
        });
        mapping.epoch += 1;
        mapping.mapped = true;
        mapping.active_from = active_from;
        self.huge_mapped.insert(lp);
        self.stats.huge_pages.coalesces += 1;
    }

    /// Splinters `lp` back to 4 KB mappings. The epoch bump makes every
    /// cached huge TLB entry stale (one shootdown generation); resident
    /// pages and their frames are untouched. Returns `false` if `lp`
    /// was not coalesced.
    fn demote(&mut self, lp: LargePageId) -> bool {
        if !self.huge_mapped.remove(&lp) {
            return false;
        }
        let mapping = self
            .huge
            .get_mut(&lp)
            .expect("coalesced large page has a mapping record");
        mapping.mapped = false;
        mapping.epoch += 1;
        true
    }

    /// The huge-mapping translation the engine's TLBs consult: the
    /// current epoch of `lp`'s huge mapping, or `None` if `lp` is not
    /// coalesced or its promotion has not activated by `now` (data
    /// still in flight). Near-free when no huge mapping exists.
    pub fn huge_translation(&self, lp: LargePageId, now: Cycle) -> Option<u64> {
        if self.huge_mapped.is_empty() {
            return None;
        }
        let mapping = self.huge.get(&lp)?;
        (mapping.mapped && now >= mapping.active_from).then_some(mapping.epoch)
    }

    /// `true` if `lp` is currently coalesced into one huge mapping.
    pub fn is_huge_mapped(&self, lp: LargePageId) -> bool {
        self.huge_mapped.contains(&lp)
    }

    /// Number of currently coalesced large pages.
    pub fn huge_mapped_len(&self) -> usize {
        self.huge_mapped.len()
    }

    /// The current epoch of `lp`'s huge mapping regardless of
    /// coalesced/splintered state, or `None` if `lp` has never been
    /// promoted. The engine's audit uses this to bound cached huge-TLB
    /// epochs.
    pub fn huge_epoch(&self, lp: LargePageId) -> Option<u64> {
        self.huge.get(&lp).map(|m| m.epoch)
    }

    /// Folds the frame allocator's split/merge/region counters into the
    /// driver statistics (called after every migration entry point).
    fn sync_frame_stats(&mut self) {
        let s = self.frames.stats();
        self.stats.huge_pages.alloc_splits = s.splits;
        self.stats.huge_pages.alloc_merges = s.merges;
        self.stats.huge_pages.regions_reserved = s.regions_reserved;
        self.stats.huge_pages.region_steals = s.region_steals;
    }

    /// Applies the sticky prefetcher-disable rule after a migration.
    fn update_prefetch_kill_switch(&mut self) {
        if self.prefetch_disabled {
            return;
        }
        if self.cfg.free_buffer_frac > 0.0 {
            let threshold = ((1.0 - self.cfg.free_buffer_frac)
                * self.frames.capacity_frames() as f64)
                .floor() as u64;
            if self.frames.used_frames() >= threshold {
                self.prefetch_disabled = true;
            }
        }
        if self.cfg.disable_prefetch_on_oversubscription && self.frames.is_full() {
            self.prefetch_disabled = true;
        }
    }

    // ------------------------------------------------------------------
    // Durable checkpointing
    // ------------------------------------------------------------------

    /// Serializes every mutable driver field for a durable checkpoint.
    ///
    /// Configuration (the `UvmConfig`, PCI-e model, fault plan) is
    /// *not* stored — the restore path rebuilds the driver from the
    /// same `RunOptions` and overwrites mutable state, so anything
    /// derivable stays derivable. The two policy specs *are* stored
    /// (as strings) because a warm-up → measurement
    /// [`swap_policies`](Self::swap_policies) changes them mid-run;
    /// each policy's learning state rides in its own length-prefixed
    /// sub-buffer via the [`Prefetcher::save_state`] /
    /// [`Evictor::save_state`] seam.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        for s in self.rng.state() {
            w.put_u64(s);
        }
        for s in self.fault_rng.state() {
            w.put_u64(s);
        }
        w.put_str(&self.cfg.prefetch.to_string());
        w.put_str(&self.cfg.evict.to_string());
        self.allocs.save_state(w);
        self.page_table.save_state(w);
        self.frames.save_state(w);
        self.frame_of.save_state(w, |w, f| w.put_u64(f.index()));
        {
            let mut sub = uvm_types::codec::ByteWriter::new();
            self.prefetcher.save_state(&mut sub);
            w.put_bytes(sub.as_bytes());
        }
        {
            let mut sub = uvm_types::codec::ByteWriter::new();
            self.evictor.save_state(&mut sub);
            w.put_bytes(sub.as_bytes());
        }
        self.resident.save_state(w);
        self.read_chan.save_state(w);
        self.write_chan.save_state(w);
        w.put_usize(self.lanes.len());
        for lane in &self.lanes {
            w.put_u64(lane.index());
        }
        w.put_bool(self.prefetch_disabled);
        self.ready_at.save_state(w, |w, t| w.put_u64(t.index()));
        self.unaccessed_prefetch.save_state(w);
        self.unaccessed_demand.save_state(w);
        self.evicted_once.save_state(w);
        let mut huge: Vec<(&LargePageId, &HugeMapping)> = self.huge.iter().collect();
        huge.sort_unstable_by_key(|(lp, _)| **lp);
        w.put_usize(huge.len());
        for (lp, m) in huge {
            w.put_u64(lp.index());
            w.put_u64(m.epoch);
            w.put_bool(m.mapped);
            w.put_u64(m.active_from.index());
        }
        let mut lp_res: Vec<(&LargePageId, &u32)> = self.lp_resident.iter().collect();
        lp_res.sort_unstable_by_key(|(lp, _)| **lp);
        w.put_usize(lp_res.len());
        for (lp, &count) in lp_res {
            w.put_u64(lp.index());
            w.put_u32(count);
        }
        let mut regions: Vec<(&LargePageId, &u64)> = self.region_of.iter().collect();
        regions.sort_unstable_by_key(|(lp, _)| **lp);
        w.put_usize(regions.len());
        for (lp, &base) in regions {
            w.put_u64(lp.index());
            w.put_u64(base);
        }
        w.put_bool(self.huge_enabled);
        match &self.fault_trace {
            Some(trace) => {
                w.put_bool(true);
                w.put_usize(trace.len());
                for &(t, p) in trace {
                    w.put_u64(t.index());
                    w.put_u64(p.index());
                }
            }
            None => w.put_bool(false),
        }
        self.stats.save_state(w);
    }

    /// Restores a [`save_state`](Self::save_state) image into a driver
    /// freshly built from the same configuration. The policy pair is
    /// rebuilt from the *stored* specs (which may differ from the
    /// construction-time specs after a warm-up swap) and then fed its
    /// serialized learning state.
    pub fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        use uvm_types::codec::CodecError;

        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.get_u64()?;
        }
        self.rng = SmallRng::from_state(rng_state);
        let mut fault_state = [0u64; 4];
        for s in &mut fault_state {
            *s = r.get_u64()?;
        }
        self.fault_rng = SmallRng::from_state(fault_state);
        let prefetch_spec: PolicySpec = r.get_str()?.parse().map_err(|e| {
            crate::checkpoint::CheckpointError::Incompatible(format!("stored prefetch spec: {e}"))
        })?;
        let evict_spec: PolicySpec = r.get_str()?.parse().map_err(|e| {
            crate::checkpoint::CheckpointError::Incompatible(format!("stored evict spec: {e}"))
        })?;
        if prefetch_spec != self.cfg.prefetch || evict_spec != self.cfg.evict {
            let registry = PolicyRegistry::global();
            self.cfg.prefetch = prefetch_spec;
            self.cfg.evict = evict_spec;
            self.prefetcher = registry
                .build_prefetcher_spec(&self.cfg.prefetch, &self.cfg)
                .map_err(|e| {
                    crate::checkpoint::CheckpointError::Incompatible(format!(
                        "stored prefetch spec does not build: {e}"
                    ))
                })?;
            self.evictor = registry
                .build_evictor_spec(&self.cfg.evict, &self.cfg)
                .map_err(|e| {
                    crate::checkpoint::CheckpointError::Incompatible(format!(
                        "stored evict spec does not build: {e}"
                    ))
                })?;
        }
        self.allocs = Allocations::load_state(r)?;
        self.page_table = PageTable::load_state(r)?;
        self.frames = FrameAllocator::load_state(r)?;
        self.frame_of = DensePageMap::load_state(r, |r| Ok(FrameId::from_index(r.get_u64()?)))?;
        {
            let bytes = r.get_bytes()?;
            let mut sub = uvm_types::codec::ByteReader::new(bytes);
            self.prefetcher.load_state(&mut sub)?;
            sub.finish()?;
        }
        {
            let bytes = r.get_bytes()?;
            let mut sub = uvm_types::codec::ByteReader::new(bytes);
            self.evictor.load_state(&mut sub)?;
            sub.finish()?;
        }
        self.resident = IndexedPageSet::load_state(r)?;
        self.read_chan.load_state(r)?;
        self.write_chan.load_state(r)?;
        let lanes = r.get_usize()?;
        if lanes == 0 {
            return Err(CodecError::BadTag {
                what: "fault lane count",
                value: 0,
            }
            .into());
        }
        self.lanes = (0..lanes)
            .map(|_| Ok(Cycle::new(r.get_u64()?)))
            .collect::<Result<_, CodecError>>()?;
        self.prefetch_disabled = r.get_bool()?;
        self.ready_at = DensePageMap::load_state(r, |r| Ok(Cycle::new(r.get_u64()?)))?;
        self.unaccessed_prefetch = DensePageSet::load_state(r)?;
        self.unaccessed_demand = DensePageSet::load_state(r)?;
        self.evicted_once = DensePageSet::load_state(r)?;
        self.huge = HashMap::default();
        self.huge_mapped = BTreeSet::new();
        for _ in 0..r.get_usize()? {
            let lp = LargePageId::new(r.get_u64()?);
            let mapping = HugeMapping {
                epoch: r.get_u64()?,
                mapped: r.get_bool()?,
                active_from: Cycle::new(r.get_u64()?),
            };
            if mapping.mapped {
                self.huge_mapped.insert(lp);
            }
            if self.huge.insert(lp, mapping).is_some() {
                return Err(CodecError::BadTag {
                    what: "duplicate huge-mapping record",
                    value: lp.index(),
                }
                .into());
            }
        }
        self.lp_resident = HashMap::default();
        for _ in 0..r.get_usize()? {
            let lp = LargePageId::new(r.get_u64()?);
            let count = r.get_u32()?;
            if self.lp_resident.insert(lp, count).is_some() {
                return Err(CodecError::BadTag {
                    what: "duplicate lp-resident record",
                    value: lp.index(),
                }
                .into());
            }
        }
        self.region_of = HashMap::default();
        for _ in 0..r.get_usize()? {
            let lp = LargePageId::new(r.get_u64()?);
            let base = r.get_u64()?;
            if self.region_of.insert(lp, base).is_some() {
                return Err(CodecError::BadTag {
                    what: "duplicate region record",
                    value: lp.index(),
                }
                .into());
            }
        }
        self.huge_enabled = r.get_bool()?;
        self.fault_trace = if r.get_bool()? {
            let n = r.get_usize()?;
            let mut trace = Vec::with_capacity(n);
            for _ in 0..n {
                let t = Cycle::new(r.get_u64()?);
                trace.push((t, PageId::new(r.get_u64()?)));
            }
            Some(trace)
        } else {
            None
        };
        self.stats = UvmStats::load_state(r)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Invariant auditing
    // ------------------------------------------------------------------

    /// Cross-checks the driver's redundant views of page state:
    /// allocator occupancy ↔ resident set ↔ page-table entries ↔
    /// frame table ↔ huge-mapping records ↔ soft-region reservations.
    /// Read-only and schedule-inert — running it cannot perturb a
    /// simulation. Returns every violation found, so a failing audit
    /// reports the full inconsistency picture, not just the first
    /// symptom.
    pub fn audit(&self) -> Result<(), AuditError> {
        let mut violations = Vec::new();
        let resident_count = self.resident.len() as u64;
        if self.page_table.valid_pages() != resident_count {
            violations.push(format!(
                "page table holds {} valid PTEs but the resident set holds {} pages",
                self.page_table.valid_pages(),
                resident_count
            ));
        }
        if self.frames.used_frames() != resident_count {
            violations.push(format!(
                "allocator reports {} frames in use but {} pages are resident \
                 (every resident page owns exactly one frame)",
                self.frames.used_frames(),
                resident_count
            ));
        }
        let mut frames_seen: Vec<u64> = Vec::with_capacity(self.resident.len());
        for page in self.resident.iter_ascending() {
            if !self.page_table.is_valid(page) {
                violations.push(format!("resident {page} has no valid PTE"));
            }
            match self.frame_of.get(page) {
                Some(frame) => {
                    if frame.index() >= self.frames.capacity_frames() {
                        violations.push(format!(
                            "resident {page} maps to frame {} beyond the {}-frame budget",
                            frame.index(),
                            self.frames.capacity_frames()
                        ));
                    }
                    frames_seen.push(frame.index());
                }
                None => violations.push(format!("resident {page} has no backing frame")),
            }
        }
        frames_seen.sort_unstable();
        for pair in frames_seen.windows(2) {
            if pair[0] == pair[1] {
                violations.push(format!(
                    "frame {} backs more than one resident page",
                    pair[0]
                ));
            }
        }
        // Per-large-page residency counts (maintained only while a
        // huge-page policy is or was recently active) must agree with a
        // recount of the resident set.
        if self.lp_tracking() {
            let mut recount: HashMap<LargePageId, u32, FxBuildHasher> = HashMap::default();
            for page in self.resident.iter_ascending() {
                *recount.entry(page.large_page()).or_insert(0) += 1;
            }
            if recount != self.lp_resident {
                let mut tracked: Vec<_> = self.lp_resident.keys().copied().collect();
                tracked.sort_unstable();
                for lp in tracked {
                    let have = self.lp_resident.get(&lp).copied().unwrap_or(0);
                    let want = recount.get(&lp).copied().unwrap_or(0);
                    if have != want {
                        violations.push(format!(
                            "lp_resident[{lp}] = {have} but {want} of its pages are resident"
                        ));
                    }
                }
                let mut actual: Vec<_> = recount.keys().copied().collect();
                actual.sort_unstable();
                for lp in actual {
                    if !self.lp_resident.contains_key(&lp) {
                        violations
                            .push(format!("{lp} has resident pages but no lp_resident record"));
                    }
                }
            }
        }
        // Huge mappings: the ordered set and the record map must agree,
        // and a coalesced large page must be fully resident on the
        // aligned, contiguous frame range promotion verified.
        for &lp in &self.huge_mapped {
            match self.huge.get(&lp) {
                Some(m) if m.mapped => {}
                Some(_) => violations.push(format!(
                    "{lp} is in huge_mapped but its record says splintered"
                )),
                None => violations.push(format!("{lp} is in huge_mapped with no record")),
            }
            let count = self.lp_resident.get(&lp).copied().unwrap_or(0);
            if u64::from(count) != PAGES_PER_LARGE_PAGE {
                violations.push(format!(
                    "coalesced {lp} has only {count}/{PAGES_PER_LARGE_PAGE} resident pages"
                ));
                continue;
            }
            let first = lp.first_page();
            let base = self.frame_of.get(first).map(FrameId::index);
            match base {
                Some(base) if base % PAGES_PER_LARGE_PAGE == 0 => {
                    for k in 1..PAGES_PER_LARGE_PAGE {
                        if self.frame_of.get(first.add(k)).map(FrameId::index) != Some(base + k) {
                            violations.push(format!(
                                "coalesced {lp} is not frame-contiguous at page offset {k}"
                            ));
                            break;
                        }
                    }
                }
                Some(base) => {
                    violations.push(format!("coalesced {lp} starts at unaligned frame {base}"))
                }
                None => violations.push(format!("coalesced {lp} has no frame for its first page")),
            }
        }
        for (lp, m) in &self.huge {
            if m.mapped && !self.huge_mapped.contains(lp) {
                violations.push(format!(
                    "{lp} record says coalesced but it is missing from huge_mapped"
                ));
            }
        }
        // Soft-reserved frame regions must still exist in the allocator,
        // and only large pages with resident pages may hold one.
        let mut regions: Vec<(&LargePageId, &u64)> = self.region_of.iter().collect();
        regions.sort_unstable_by_key(|(lp, _)| **lp);
        for (lp, &base) in regions {
            if !self.frames.is_region_reserved(base) {
                violations.push(format!(
                    "{lp} claims soft region at frame {base} but the allocator has none"
                ));
            }
            if !self.lp_resident.contains_key(lp) {
                violations.push(format!(
                    "{lp} holds soft region at frame {base} with zero resident pages"
                ));
            }
        }
        // The shared allocation trees are residency metadata: each
        // block's valid count must equal its valid-PTE population.
        for alloc in self.allocs.iter() {
            for tree in alloc.trees() {
                let extent = tree.extent();
                for b in 0..extent.num_blocks {
                    let block = extent.first_block.add(b);
                    let tracked = tree.block_valid_pages(block);
                    let actual = (0..uvm_types::PAGES_PER_BASIC_BLOCK)
                        .filter(|&k| self.page_table.is_valid(block.first_page().add(k)))
                        .count() as u32;
                    if tracked != actual {
                        violations.push(format!(
                            "tree block {} tracks {tracked} valid pages but the page \
                             table holds {actual}",
                            block.index()
                        ));
                    }
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(AuditError { violations })
        }
    }
}

/// One or more failed GMMU invariants, reported together.
#[derive(Debug)]
pub struct AuditError {
    /// Human-readable description of each violated invariant.
    pub violations: Vec<String>,
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "GMMU audit failed ({} violations):",
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EvictPolicy, PrefetchPolicy};
    use uvm_types::Duration;

    fn first_page_of_block(base: VirtAddr, block: u64) -> PageId {
        base.page().add(block * 16)
    }

    /// Touch (fault if needed, then access) a page, returning the time
    /// the access could proceed.
    fn touch(gmmu: &mut Gmmu, page: PageId, now: Cycle) -> Cycle {
        let t = if gmmu.is_resident(page) {
            gmmu.ready_time(page, now).unwrap_or(now)
        } else {
            gmmu.handle_fault(page, now).fault_page_ready()
        };
        gmmu.record_access(page, false);
        t
    }

    #[test]
    fn no_prefetch_migrates_single_pages() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::None));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..10 {
            now = touch(&mut g, base.page().add(i), now);
        }
        assert_eq!(g.stats().far_faults, 10);
        assert_eq!(g.stats().pages_migrated, 10);
        assert_eq!(g.stats().pages_prefetched, 0);
        assert_eq!(g.read_stats().histogram.count_4kib(), 10);
    }

    #[test]
    fn faults_serialize_through_a_single_lane_driver() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_prefetch(PrefetchPolicy::None)
                .with_fault_lanes(1),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let r1 = g.handle_fault(base.page(), Cycle::ZERO);
        let r2 = g.handle_fault(base.page().add(1), Cycle::ZERO);
        // Second fault's handling starts only after the first fault is
        // fully retired (handling window + migration landed).
        assert_eq!(r2.handled, r1.fault_page_ready() + g.config().fault_latency);
        assert!(r2.fault_page_ready() > r1.fault_page_ready());
    }

    #[test]
    fn fault_lanes_overlap_handling_windows() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_prefetch(PrefetchPolicy::None)
                .with_fault_lanes(4),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut handled = Vec::new();
        for i in 0..4 {
            handled.push(g.handle_fault(base.page().add(i), Cycle::ZERO).handled);
        }
        // All four faults finish handling in the same 45us window.
        assert!(handled.iter().all(|&h| h == handled[0]));
        // The fifth queues behind the earliest lane, which is occupied
        // until its fault's 4 KB migration lands.
        let fifth = g.handle_fault(base.page().add(4), Cycle::ZERO);
        let transfer = PcieModel::pascal_x16().transfer_time(PAGE_SIZE);
        assert_eq!(
            fifth.handled,
            handled[0] + transfer + g.config().fault_latency
        );
    }

    #[test]
    fn random_prefetch_stays_in_large_page() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::Random));
        let base = g.malloc_managed(Bytes::mib(4));
        let fault = base.page().add(600); // second large page
        let res = g.handle_fault(fault, Cycle::ZERO);
        assert_eq!(res.ready.len(), 2);
        let extra = res.ready[1].0;
        assert_eq!(extra.large_page(), fault.large_page());
        assert_ne!(extra, fault);
        assert_eq!(g.stats().pages_prefetched, 1);
        // Both travel as separate 4 KB transfers.
        assert_eq!(g.read_stats().histogram.count_4kib(), 2);
    }

    #[test]
    fn sequential_local_prefetch_migrates_the_block() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::SequentialLocal));
        let base = g.malloc_managed(Bytes::mib(2));
        let fault = base.page().add(5); // middle of block 0
        let res = g.handle_fault(fault, Cycle::ZERO);
        assert_eq!(res.ready.len(), 16);
        for i in 0..16 {
            assert!(g.is_resident(base.page().add(i)));
        }
        // Fault group 4 KB + prefetch group 60 KB.
        assert_eq!(g.read_stats().histogram.count(PAGE_SIZE), 1);
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(60)), 1);
        // A second fault in the same block never happens (all valid);
        // fault in the next block migrates that block.
        let res2 = g.handle_fault(base.page().add(16), Cycle::ZERO);
        assert_eq!(res2.ready.len(), 16);
    }

    #[test]
    fn mem_prefetch_async_migrates_a_range_in_bulk() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::None));
        let base = g.malloc_managed(Bytes::mib(4));
        let ready = g.mem_prefetch_async(base, Bytes::mib(4), Cycle::ZERO);
        assert_eq!(ready.len(), 1024);
        assert_eq!(g.stats().pages_migrated, 1024);
        assert_eq!(g.stats().pages_prefetched, 1024);
        assert_eq!(g.stats().far_faults, 0);
        // Two 2 MB transfers, no 4 KB piecemeal traffic.
        assert_eq!(g.read_stats().histogram.count(Bytes::mib(2)), 2);
        assert_eq!(g.read_stats().histogram.count_4kib(), 0);
        // Subsequent accesses never fault.
        for i in 0..1024 {
            assert!(g.is_resident(base.page().add(i)));
        }
    }

    #[test]
    fn mem_prefetch_async_skips_resident_pages_and_foreign_ranges() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::None));
        let base = g.malloc_managed(Bytes::kib(128));
        g.handle_fault(base.page().add(3), Cycle::ZERO);
        let ready = g.mem_prefetch_async(base, Bytes::mib(64), Cycle::ZERO);
        // 32 pages requested... allocation covers 32 pages, one already
        // resident; the huge range clips to the allocation.
        assert_eq!(ready.len(), 31);
        // The resident page split the run into two transfers.
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(12)), 1);
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(112)), 1);
    }

    #[test]
    fn mem_prefetch_async_respects_the_memory_budget() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::SequentialLocal),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        // Touch the first 128 pages so there is something evictable.
        for i in 0..128 {
            let res = g.handle_fault(base.page().add(i), now);
            now = res.fault_page_ready();
            g.record_access(base.page().add(i), false);
        }
        let ready = g.mem_prefetch_async(
            base.offset(Bytes::mib(1)),
            Bytes::mib(1),
            now + Duration::from_cycles(10_000),
        );
        assert_eq!(ready.len(), 256);
        assert!(g.resident_pages() <= g.capacity_frames());
        assert!(g.stats().pages_evicted > 0);
    }

    #[test]
    fn mem_prefetch_async_empty_and_partial_ranges() {
        let mut g = Gmmu::new(UvmConfig::default());
        let base = g.malloc_managed(Bytes::mib(1));
        assert!(g
            .mem_prefetch_async(base, Bytes::ZERO, Cycle::ZERO)
            .is_empty());
        // A 1-byte range covers exactly one page.
        let ready = g.mem_prefetch_async(base, Bytes::new(1), Cycle::ZERO);
        assert_eq!(ready.len(), 1);
        // A range straddling a page boundary covers both pages.
        let ready = g.mem_prefetch_async(base.offset(Bytes::new(4095)), Bytes::new(2), Cycle::ZERO);
        assert_eq!(ready.len(), 1, "page 0 already resident, page 1 migrates");
    }

    #[test]
    fn zheng_512k_prefetches_128_consecutive_pages() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::Sequential512K));
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::ZERO);
        // Fault page + 127 consecutive prefetched pages, crossing 64 KB
        // block boundaries (unlike SLp).
        assert_eq!(res.ready.len(), 128);
        assert!(g.is_resident(base.page().add(127)));
        assert!(!g.is_resident(base.page().add(128)));
        // One 4 KB fault group + one 508 KB prefetch group.
        assert_eq!(g.read_stats().histogram.count(PAGE_SIZE), 1);
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(508)), 1);
        // Near the allocation end, the plan clips.
        let tail = base.page().add(511);
        let res = g.handle_fault(tail, Cycle::ZERO);
        assert_eq!(res.ready.len(), 1);
    }

    #[test]
    fn stride_256k_prefetches_64_consecutive_pages() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::Stride256K));
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::ZERO);
        // Fault page + 63 consecutive prefetched pages: half SZp's
        // window.
        assert_eq!(res.ready.len(), 64);
        assert!(g.is_resident(base.page().add(63)));
        assert!(!g.is_resident(base.page().add(64)));
        // One 4 KB fault group + one 252 KB prefetch group.
        assert_eq!(g.read_stats().histogram.count(PAGE_SIZE), 1);
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(252)), 1);
        // Near the allocation end, the plan clips.
        let tail = base.page().add(511);
        let res = g.handle_fault(tail, Cycle::ZERO);
        assert_eq!(res.ready.len(), 1);
    }

    #[test]
    fn tbnp_fig2a_through_the_driver() {
        let mut g =
            Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood));
        let base = g.malloc_managed(Bytes::kib(512));
        let mut now = Cycle::ZERO;
        for b in [1u64, 3, 5, 7] {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        assert_eq!(g.stats().pages_migrated, 4 * 16);
        // Fifth fault on block 0 cascades: blocks 0, 2, 4, 6 migrate.
        let res = g.handle_fault(first_page_of_block(base, 0), now);
        assert_eq!(res.ready.len(), 4 * 16);
        assert_eq!(g.resident_pages(), 128);
        assert_eq!(g.stats().far_faults, 5);
    }

    #[test]
    fn tbnp_contiguous_blocks_group_into_one_transfer() {
        // Fig. 2b: after blocks 1,3 then 0 (+2 prefetched), the fault on
        // block 4 migrates blocks 4..8 as 4 KB + 252 KB transfers.
        let mut g =
            Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood));
        let base = g.malloc_managed(Bytes::kib(512));
        let mut now = Cycle::ZERO;
        for b in [1u64, 3, 0] {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        let _ = g.handle_fault(first_page_of_block(base, 4), now);
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(252)), 1);
        assert_eq!(g.resident_pages(), 128);
    }

    fn oversub_config(evict: EvictPolicy) -> UvmConfig {
        // 1 MB budget (256 frames), 2 MB working set.
        UvmConfig::default()
            .with_capacity(Bytes::mib(1))
            .with_prefetch(PrefetchPolicy::None)
            .with_evict(evict)
    }

    #[test]
    fn lru_eviction_picks_oldest_accessed_page() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::LruPage));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..256 {
            now = touch(&mut g, base.page().add(i), now);
        }
        assert_eq!(g.stats().pages_evicted, 0);
        // Next fault evicts page 0, the LRU.
        let res = g.handle_fault(base.page().add(256), now);
        assert_eq!(res.evicted, vec![base.page()]);
        assert!(!g.is_resident(base.page()));
        assert_eq!(g.stats().pages_evicted, 1);
    }

    #[test]
    fn demand_eviction_stalls_behind_writeback() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::LruPage));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..256 {
            now = touch(&mut g, base.page().add(i), now);
        }
        let res = g.handle_fault(base.page().add(256), now);
        // The migration waited for the 4 KB write-back after handling.
        let wb = PcieModel::pascal_x16().transfer_time(PAGE_SIZE);
        let read = PcieModel::pascal_x16().transfer_time(PAGE_SIZE);
        assert_eq!(res.fault_page_ready(), res.handled + wb + read);
    }

    #[test]
    fn pre_eviction_does_not_stall_migration() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::SequentialLocal));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..256 {
            now = touch(&mut g, base.page().add(i), now);
        }
        let res = g.handle_fault(base.page().add(256), now);
        let read = PcieModel::pascal_x16().transfer_time(PAGE_SIZE);
        assert_eq!(res.fault_page_ready(), res.handled + read);
        // And a whole 64 KB block was written back as one unit.
        assert_eq!(g.write_stats().histogram.count(Bytes::kib(64)), 1);
        assert_eq!(g.stats().pages_evicted, 16);
    }

    #[test]
    fn tbne_cascade_groups_writebacks() {
        // Reproduce Fig. 8 through the driver: fill 512 KB, evict via
        // TBNe with LRU order blocks 1, 3, 4, 0.
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::kib(512))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::TreeBasedNeighborhood),
        );
        let base = g.malloc_managed(Bytes::kib(512));
        let other = g.malloc_managed(Bytes::kib(512));
        let mut now = Cycle::ZERO;
        // Fill all 8 blocks of the first allocation's tree.
        for b in 0..8 {
            for p in 0..16 {
                now = touch(&mut g, base.page().add(b * 16 + p), now);
            }
        }
        // Access order for LRU: make blocks 1, 3, 4, 0 the LRU order,
        // then 2, 5, 6, 7 more recent.
        for b in [1u64, 3, 4, 0, 2, 5, 6, 7] {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        // One fault in the second allocation forces eviction: victim
        // is block 1 of the first tree.
        let res = g.handle_fault(other.page(), now);
        // Block 1 evicted alone (no cascade at 7/8 valid).
        assert_eq!(res.evicted.len(), 16);
        assert_eq!(res.evicted[0].basic_block().index(), 1);
    }

    #[test]
    fn large_page_eviction_moves_2mb_as_one_transfer() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(2))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::LruLargePage),
        );
        let base = g.malloc_managed(Bytes::mib(4));
        let mut now = Cycle::ZERO;
        for i in 0..512 {
            now = touch(&mut g, base.page().add(i), now);
        }
        // Let the grace pin on the most recent migration expire.
        now += Duration::from_cycles(10_000);
        let res = g.handle_fault(base.page().add(512), now);
        assert_eq!(res.evicted.len(), 512);
        assert_eq!(g.write_stats().histogram.count(Bytes::mib(2)), 1);
    }

    #[test]
    fn access_frequency_eviction_keeps_hot_pages() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::AccessFrequency));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..256 {
            now = touch(&mut g, base.page().add(i), now);
        }
        // Re-touch every page except page 7: everything else has two
        // accesses, page 7 has one.
        for i in 0..256 {
            if i != 7 {
                now = touch(&mut g, base.page().add(i), now);
            }
        }
        now += Duration::from_cycles(10_000);
        // The next fault evicts the least-frequently-used page 7 —
        // NOT page 0, which LRU would pick.
        let res = g.handle_fault(base.page().add(256), now);
        assert_eq!(res.evicted, vec![base.page().add(7)]);
        assert!(g.is_resident(base.page()));
    }

    #[test]
    fn access_frequency_counts_reset_on_eviction() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::AccessFrequency));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        // Make page 0 hot, then force its eventual eviction by touching
        // everything else many times.
        for _ in 0..3 {
            now = touch(&mut g, base.page(), now);
        }
        for i in 1..257 {
            now = touch(&mut g, base.page().add(i), now);
            now = touch(&mut g, base.page().add(i), now);
            now = touch(&mut g, base.page().add(i), now);
            now = touch(&mut g, base.page().add(i), now);
        }
        assert!(!g.is_resident(base.page()), "page 0 eventually evicted");
        // Re-admitting starts the count cold: page 0 is immediately the
        // coldest page again.
        now += Duration::from_cycles(10_000);
        now = touch(&mut g, base.page(), now);
        let _ = now;
        assert!(g.stats().pages_thrashed > 0);
    }

    #[test]
    fn prefetch_kill_switch_on_oversubscription() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::SequentialLocal)
                .with_evict(EvictPolicy::LruPage)
                .with_disable_prefetch_on_oversubscription(true),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        // 16 block faults fill the 256-frame budget exactly.
        for b in 0..16 {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        assert!(g.prefetch_disabled());
        let before = g.stats().pages_prefetched;
        let _ = touch(&mut g, first_page_of_block(base, 16), now);
        assert_eq!(g.stats().pages_prefetched, before, "no prefetch after full");
        assert_eq!(g.stats().pages_evicted, 1, "single 4 KB demand eviction");
    }

    #[test]
    fn free_page_buffer_disables_prefetch_early_and_keeps_frames_free() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::SequentialLocal)
                .with_evict(EvictPolicy::LruPage)
                .with_free_buffer_frac(0.10),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for b in 0..32 {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        assert!(g.prefetch_disabled());
        // The buffer keeps ~10% of 256 frames free at fault time.
        assert!(g.capacity_frames() - g.resident_pages() >= 25);
        assert!(g.stats().pages_evicted > 0);
    }

    #[test]
    fn reservation_protects_top_of_lru() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::LruPage)
                .with_reserve_frac(0.10),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..256 {
            now = touch(&mut g, base.page().add(i), now);
        }
        // 10% of 256 = 25 pages reserved; the victim is page 25.
        let res = g.handle_fault(base.page().add(256), now);
        assert_eq!(res.evicted, vec![base.page().add(25)]);
        assert!(g.is_resident(base.page()));
    }

    #[test]
    fn thrashing_counts_re_migrations() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::LruPage));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        // Two linear sweeps over 512 pages with a 256-frame budget:
        // the second sweep re-migrates evicted pages.
        for _ in 0..2 {
            for i in 0..512 {
                now = touch(&mut g, base.page().add(i), now);
            }
        }
        assert!(g.stats().pages_thrashed > 0);
        assert!(g.stats().pages_thrashed <= g.stats().pages_evicted);
    }

    #[test]
    fn random_eviction_is_seeded_and_reproducible() {
        let run = |seed| {
            let mut g = Gmmu::new(oversub_config(EvictPolicy::RandomPage).with_rng_seed(seed));
            let base = g.malloc_managed(Bytes::mib(2));
            let mut now = Cycle::ZERO;
            for i in 0..300 {
                now = touch(&mut g, base.page().add(i), now);
            }
            g.stats().clone()
        };
        assert_eq!(run(7), run(7));
        assert_eq!(run(7).pages_evicted, 300 - 256);
    }

    #[test]
    fn ready_time_reports_in_flight_pages() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::SequentialLocal));
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::ZERO);
        let (last_page, last_ready) = *res.ready.last().unwrap();
        // Immediately after the fault, the prefetched tail is in flight.
        assert_eq!(g.ready_time(last_page, Cycle::ZERO), Some(last_ready));
        // Once its transfer completes it is no longer in flight.
        assert_eq!(g.ready_time(last_page, last_ready), None);
    }

    #[test]
    fn with_policies_accepts_third_party_implementations() {
        // A custom prefetcher/evictor pair plugs into the mechanism
        // without any registry entry or enum variant: the seam the
        // policy layer exists for.
        #[derive(Clone, Debug)]
        struct NextPagePrefetcher;
        impl Prefetcher for NextPagePrefetcher {
            fn name(&self) -> &'static str {
                "next-page"
            }
            fn plan(
                &mut self,
                view: &ResidencyView<'_>,
                _rng: &mut SmallRng,
                page: PageId,
                alloc: AllocId,
            ) -> Vec<Vec<PageId>> {
                let next = page.add(1);
                if next.index() < view.alloc(alloc).end_page().index() && !view.is_valid(next) {
                    vec![vec![next]]
                } else {
                    Vec::new()
                }
            }
            fn box_clone(&self) -> Box<dyn Prefetcher> {
                Box::new(self.clone())
            }
        }
        #[derive(Clone, Debug)]
        struct HighestPageEvictor;
        impl Evictor for HighestPageEvictor {
            fn name(&self) -> &'static str {
                "highest-page"
            }
            fn is_pre_eviction(&self) -> bool {
                false
            }
            fn select_victims(
                &mut self,
                view: &ResidencyView<'_>,
                _rng: &mut SmallRng,
                t: Cycle,
                max_pin: u8,
            ) -> Option<Vec<Vec<PageId>>> {
                view.resident_iter()
                    .filter(|&p| view.pin_level(p, t) <= max_pin)
                    .max_by_key(|p| p.index())
                    .map(|p| vec![vec![p]])
            }
            fn box_clone(&self) -> Box<dyn Evictor> {
                Box::new(self.clone())
            }
        }

        let mut g = Gmmu::with_policies(
            UvmConfig::default().with_capacity(Bytes::mib(1)),
            Box::new(NextPagePrefetcher),
            Box::new(HighestPageEvictor),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::ZERO);
        assert_eq!(res.ready.len(), 2, "fault page + the next page");
        assert!(g.is_resident(base.page().add(1)));

        let mut now = Cycle::ZERO;
        for i in 0..256 {
            let p = base.page().add(i);
            if !g.is_resident(p) {
                now = g.handle_fault(p, now).fault_page_ready();
            }
            g.record_access(p, false);
        }
        now += Duration::from_cycles(10_000);
        let res = g.handle_fault(base.page().add(400), now);
        // The custom evictor always removes the highest resident page.
        assert_eq!(res.evicted, vec![base.page().add(255)]);
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn fault_on_resident_page_panics() {
        let mut g = Gmmu::new(UvmConfig::default());
        let base = g.malloc_managed(Bytes::mib(2));
        g.handle_fault(base.page(), Cycle::ZERO);
        g.handle_fault(base.page(), Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "unmanaged")]
    fn fault_outside_allocations_panics() {
        let mut g = Gmmu::new(UvmConfig::default());
        g.handle_fault(PageId::new(1_000_000), Cycle::ZERO);
    }

    #[test]
    fn prefetch_trimmed_to_budget() {
        // A 1 MB budget with a 2 MB allocation: TBNp would love to pull
        // large chunks, but migrations never exceed the budget.
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                .with_evict(EvictPolicy::TreeBasedNeighborhood),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for b in 0..32 {
            now = touch(&mut g, first_page_of_block(base, b), now);
            assert!(g.resident_pages() <= g.capacity_frames());
        }
        assert!(g.stats().pages_evicted > 0);
    }

    #[test]
    fn congested_read_channel_suppresses_prefetch() {
        // Saturate the read channel with a user-directed bulk copy,
        // then fault: the prefetcher must stand down (demand-only)
        // until the backlog drains below the congestion cap.
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_prefetch(PrefetchPolicy::SequentialLocal)
                .with_prefetch_congestion_cap(Duration::from_micros(50.0)),
        );
        let big = g.malloc_managed(Bytes::mib(8));
        let other = g.malloc_managed(Bytes::mib(2));
        // ~8 MiB of transfers = ~730us of backlog at peak bandwidth.
        g.mem_prefetch_async(big, Bytes::mib(8), Cycle::ZERO);
        let res = g.handle_fault(other.page(), Cycle::ZERO);
        assert_eq!(res.ready.len(), 1, "no prefetch while congested");
        // Far in the future the backlog has drained: prefetch resumes.
        let later = Cycle::ZERO + Duration::from_micros(5_000.0);
        let res = g.handle_fault(other.page().add(16), later);
        assert_eq!(res.ready.len(), 16, "prefetch resumes when idle");
    }

    #[test]
    fn prefetch_accuracy_accounting_through_the_driver() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::kib(128)) // 32 frames
                .with_prefetch(PrefetchPolicy::SequentialLocal)
                .with_evict(EvictPolicy::SequentialLocal),
        );
        let base = g.malloc_managed(Bytes::mib(1));
        let mut now = Cycle::ZERO;
        // Touch two pages per block (the fault page plus one
        // prefetched neighbour): 14 of 16 prefetched pages per block
        // are never accessed.
        for b in 0..4 {
            now = touch(&mut g, first_page_of_block(base, b), now);
            now = touch(&mut g, first_page_of_block(base, b).add(1), now);
        }
        now += Duration::from_cycles(10_000);
        // Force evictions of the untouched prefetched pages.
        for b in 4..6 {
            now = touch(&mut g, first_page_of_block(base, b), now);
            now += Duration::from_cycles(10_000);
        }
        let s = g.stats();
        assert!(s.prefetched_wasted > 0, "unused prefetched pages evicted");
        assert!(s.prefetched_used > 0, "accessed pages counted as used");
        assert!(s.prefetch_accuracy() < 1.0);
        // Clean write-backs: nothing was written, so every evicted page
        // was clean.
        assert_eq!(s.clean_pages_written_back, s.pages_evicted);
    }

    #[test]
    fn dirty_only_writeback_moves_fewer_bytes() {
        let run = |dirty_only: bool| {
            let mut g = Gmmu::new(
                UvmConfig::default()
                    .with_capacity(Bytes::kib(256))
                    .with_prefetch(PrefetchPolicy::SequentialLocal)
                    .with_evict(EvictPolicy::SequentialLocal)
                    .with_writeback_dirty_only(dirty_only),
            );
            let base = g.malloc_managed(Bytes::mib(1));
            let mut now = Cycle::ZERO;
            // Sweep 128 pages writing every fourth page, through a
            // 64-frame budget.
            for i in 0..128u64 {
                let p = base.page().add(i);
                if !g.is_resident(p) {
                    let res = g.handle_fault(p, now);
                    now = res.fault_page_ready() + Duration::from_cycles(3_000);
                }
                g.record_access(p, i % 4 == 0);
            }
            (g.write_stats().bytes, g.stats().pages_evicted)
        };
        let (bulk_bytes, bulk_evicted) = run(false);
        let (dirty_bytes, dirty_evicted) = run(true);
        assert_eq!(bulk_evicted, dirty_evicted, "same eviction decisions");
        assert_eq!(
            bulk_bytes,
            PAGE_SIZE * bulk_evicted,
            "bulk writes everything"
        );
        assert!(
            dirty_bytes.bytes() < bulk_bytes.bytes() / 2,
            "dirty-only writes ~1/4 of the pages ({dirty_bytes} vs {bulk_bytes})"
        );
    }

    #[test]
    fn driver_latency_is_45us() {
        let mut g = Gmmu::new(UvmConfig::default());
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::new(1000));
        assert_eq!(res.handled, Cycle::new(1000) + Duration::from_micros(45.0));
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    use crate::fault::FaultPlan;

    /// Runs a small oversubscribed streaming scenario and returns the
    /// final driver stats plus read-channel retry/giveup counters.
    fn faulty_run(plan: FaultPlan) -> (UvmStats, u64, u64) {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::kib(4 * 64)) // 64 frames
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::LruPage)
                .with_fault_plan(plan),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..128 {
            now = touch(&mut g, base.page().add(i), now);
        }
        let read = g.read_stats();
        (
            g.stats().clone(),
            read.retries + g.write_stats().retries,
            read.giveups + g.write_stats().giveups,
        )
    }

    #[test]
    fn inert_plan_is_byte_identical_to_no_plan() {
        // A plan with a seed but zero probabilities must not perturb
        // anything: no injection RNG is ever drawn.
        let (baseline, r0, g0) = faulty_run(FaultPlan::none());
        let (seeded, r1, g1) = faulty_run(FaultPlan::none().with_seed(0xABCD));
        assert_eq!(baseline, seeded);
        assert_eq!((r0, g0), (0, 0));
        assert_eq!((r1, g1), (0, 0));
        assert!(baseline.fault_injection.is_clean());
    }

    #[test]
    fn injected_faults_are_deterministic_per_seed() {
        let plan = FaultPlan::chaos().with_seed(7);
        let (a, ra, ga) = faulty_run(plan);
        let (b, rb, gb) = faulty_run(plan);
        assert_eq!(a, b);
        assert_eq!((ra, ga), (rb, gb));
        assert!(
            !a.fault_injection.is_clean(),
            "chaos over 128 faults must inject something: {:?}",
            a.fault_injection
        );
        // A different seed reshuffles the injections.
        let (c, _, _) = faulty_run(plan.with_seed(8));
        assert_ne!(a.fault_injection, c.fault_injection);
    }

    #[test]
    fn transfer_retries_surface_in_driver_stats() {
        let plan = FaultPlan::none().with_transfer_faults(0.5, 3, Duration::from_micros(5.0));
        let (stats, chan_retries, chan_giveups) = faulty_run(plan);
        assert!(stats.fault_injection.transfer_retries > 0);
        // The driver-side counters mirror the channel-side ones.
        assert_eq!(stats.fault_injection.transfer_retries, chan_retries);
        assert_eq!(stats.fault_injection.transfer_giveups, chan_giveups);
    }

    #[test]
    fn latency_jitter_extends_the_handling_window() {
        let plan = FaultPlan::none().with_latency_jitter(1.0).with_seed(3);
        let mut g = Gmmu::new(UvmConfig::default().with_fault_plan(plan));
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::ZERO);
        let jitter = g.stats().fault_injection.jitter_cycles;
        assert!(jitter > 0, "full jitter with this seed draws a nonzero u");
        assert_eq!(
            res.handled,
            Cycle::ZERO + g.config().fault_latency + Duration::from_cycles(jitter)
        );
    }

    #[test]
    fn migration_storm_replays_the_fault_until_the_budget_runs_out() {
        // Certain failure: every attempt fails, so the fault pays the
        // full replay budget and then gives up (the migration still
        // completes — the simulated world stays forward-progressing).
        let plan = FaultPlan::none().with_migration_faults(1.0, 2);
        let mut g = Gmmu::new(UvmConfig::default().with_fault_plan(plan));
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::ZERO);
        let fi = &g.stats().fault_injection;
        assert_eq!(fi.migration_retries, 2);
        assert_eq!(fi.migration_giveups, 1);
        // Base window + two replayed handling windows.
        assert_eq!(
            res.handled,
            Cycle::ZERO
                + g.config().fault_latency
                + g.config().fault_latency
                + g.config().fault_latency
        );
        assert!(g.is_resident(base.page()));
    }

    #[test]
    fn pressure_mode_forces_emergency_eviction() {
        // Certain pressure with a 25 % free-frame target: once the
        // 64-frame budget fills, every fault first bulk-evicts down to
        // 16 free frames before the demand path even runs.
        let plan = FaultPlan::none().with_pressure(1.0, 0.25);
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::kib(4 * 64))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::LruPage)
                .with_fault_plan(plan),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..80 {
            now = touch(&mut g, base.page().add(i), now);
        }
        let fi = &g.stats().fault_injection;
        assert!(fi.emergency_evictions > 0, "{fi:?}");
        assert!(g.capacity_frames() - g.resident_pages() >= 15);
        // Emergency victims are part of the per-fault evicted set (the
        // engine must shoot down their TLB entries), so the aggregate
        // eviction counter covers them.
        assert!(g.stats().pages_evicted >= fi.emergency_evictions);
    }

    #[test]
    fn pressure_mode_is_inert_without_a_capacity_budget() {
        let plan = FaultPlan::none().with_pressure(1.0, 0.25);
        let mut g = Gmmu::new(UvmConfig::default().with_fault_plan(plan));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..16 {
            now = touch(&mut g, base.page().add(i), now);
        }
        assert_eq!(g.stats().fault_injection.emergency_evictions, 0);
        assert_eq!(g.stats().pages_evicted, 0);
    }

    /// Serializes `g`, restores the image into a fresh driver built
    /// from `cfg`, and asserts the restored driver re-serializes to the
    /// identical bytes (state equality through the codec's own lens).
    fn assert_state_round_trips(g: &mut Gmmu, cfg: UvmConfig) -> Gmmu {
        g.audit().unwrap();
        let mut w = uvm_types::codec::ByteWriter::new();
        g.save_state(&mut w);
        let image = w.into_bytes();
        let mut restored = Gmmu::new(cfg);
        let mut r = uvm_types::codec::ByteReader::new(&image);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        restored.audit().unwrap();
        let mut w2 = uvm_types::codec::ByteWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(image, w2.into_bytes(), "restored driver diverges");
        restored
    }

    #[test]
    fn checkpoint_round_trips_under_eviction_pressure() {
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::mib(1))
            .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
            .with_evict(EvictPolicy::TreeBasedNeighborhood);
        let mut g = Gmmu::new(cfg.clone());
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for block in 0..32 {
            now = touch(&mut g, first_page_of_block(base, block), now);
        }
        assert!(g.stats().pages_evicted > 0);
        let mut restored = assert_state_round_trips(&mut g, cfg);
        // The restored driver continues identically to the original.
        let page = first_page_of_block(base, 7);
        assert_eq!(g.is_resident(page), restored.is_resident(page));
        let (a, b) = (touch(&mut g, page, now), touch(&mut restored, page, now));
        assert_eq!(a, b);
        assert_eq!(g.stats(), restored.stats());
    }

    #[test]
    fn checkpoint_round_trips_with_huge_pages_and_chaos() {
        let plan = FaultPlan::none()
            .with_migration_faults(0.2, 3)
            .with_pressure(0.1, 0.05);
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::mib(4))
            .with_prefetch(PrefetchPolicy::MosaicCoalesce)
            .with_evict(EvictPolicy::MosaicSplinter)
            .with_fault_plan(plan);
        let mut g = Gmmu::new(cfg.clone());
        let base = g.malloc_managed(Bytes::mib(8));
        let mut now = Cycle::ZERO;
        for i in 0..1024 {
            now = touch(&mut g, base.page().add(i % 700), now);
        }
        let mut restored = assert_state_round_trips(&mut g, cfg);
        for i in 0..32 {
            let page = base.page().add(600 + i);
            assert_eq!(
                touch(&mut g, page, now),
                touch(&mut restored, page, now),
                "divergence at post-restore access {i}"
            );
        }
        assert_eq!(g.stats(), restored.stats());
        restored.audit().unwrap();
    }

    #[test]
    fn checkpoint_restores_swapped_policies() {
        // A warm-up → measurement swap leaves the live specs different
        // from the construction-time config; the checkpoint must carry
        // the live pair.
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::mib(1))
            .with_prefetch(PrefetchPolicy::None)
            .with_evict(EvictPolicy::LruPage);
        let mut g = Gmmu::new(cfg.clone());
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..64 {
            now = touch(&mut g, base.page().add(i), now);
        }
        g.swap_policies(
            PrefetchPolicy::SequentialLocal,
            EvictPolicy::SequentialLocal,
        );
        for i in 0..64 {
            now = touch(&mut g, base.page().add(256 + i), now);
        }
        let mut restored = assert_state_round_trips(&mut g, cfg);
        assert_eq!(
            restored.config().prefetch,
            PrefetchPolicy::SequentialLocal.into()
        );
        let page = base.page().add(400);
        assert_eq!(touch(&mut g, page, now), touch(&mut restored, page, now));
        assert_eq!(g.stats(), restored.stats());
    }

    #[test]
    fn audit_catches_a_planted_inconsistency() {
        let mut g = Gmmu::new(UvmConfig::default().with_capacity(Bytes::mib(1)));
        let base = g.malloc_managed(Bytes::mib(1));
        let mut now = Cycle::ZERO;
        for i in 0..8 {
            now = touch(&mut g, base.page().add(i), now);
        }
        g.audit().unwrap();
        // Tear one page out of the resident set behind the page table's
        // back: the cross-check must notice the disagreement.
        let victim = base.page().add(3);
        g.resident.remove(victim);
        let err = g.audit().unwrap_err();
        assert!(
            err.violations.iter().any(|v| v.contains("valid PTEs")),
            "{err}"
        );
    }
}
