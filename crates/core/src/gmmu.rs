//! The GMMU / UVM driver model: far-fault servicing, hardware
//! prefetching, and page (pre-)eviction under a strict memory budget.
//!
//! This is the component the whole paper studies. The GPU engine calls
//! [`Gmmu::handle_fault`] for every distinct far-fault (duplicates are
//! merged in the MSHRs before reaching the driver); the driver
//!
//! 1. pays the far-fault handling latency (45 µs, serialized across
//!    faults — the host runtime handles one fault at a time),
//! 2. asks the configured [`PrefetchPolicy`] what to migrate along
//!    with the faulty page,
//! 3. evicts pages per the configured [`EvictPolicy`] if the device
//!    memory budget would be exceeded (demand eviction stalls the
//!    migration behind the write-back; bulk pre-eviction does not),
//! 4. schedules the migration as transfer groups on the PCI-e read
//!    channel — the faulty page first as its own 4 KB transfer, then
//!    the prefetch groups (Sec. 3.2/3.3 fault-group/prefetch-group
//!    split),
//! 5. validates the pages and reports per-page data-ready times.

use uvm_interconnect::{ChannelStats, PcieChannel, PcieModel};
use uvm_mem::{FrameAllocator, FrameId, PageTable};
use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{BasicBlockId, Bytes, Cycle, Duration, PageId, VirtAddr, PAGE_SIZE, PAGES_PER_LARGE_PAGE};

use crate::alloc::{AllocId, Allocations};
use crate::dense::{DensePageMap, DensePageSet};
use crate::config::UvmConfig;
use crate::hier::HierarchicalLru;
use crate::indexed::IndexedPageSet;
use crate::lru::LruQueue;
use crate::policy::{EvictPolicy, PrefetchPolicy};
use crate::stats::UvmStats;
use crate::tree::group_contiguous;

/// The result of servicing one far-fault.
#[derive(Clone, Debug)]
pub struct FaultResolution {
    /// Every page migrated for this fault (the faulty page first) with
    /// the cycle at which its data is present in device memory.
    pub ready: Vec<(PageId, Cycle)>,
    /// Pages evicted to make room (the engine shoots down their TLB
    /// entries).
    pub evicted: Vec<PageId>,
    /// Cycle at which the driver finished handling this fault (the
    /// fault-handling window, before transfers complete).
    pub handled: Cycle,
}

impl FaultResolution {
    /// Data-ready time of the faulty page itself.
    pub fn fault_page_ready(&self) -> Cycle {
        self.ready.first().expect("fault page always migrated").1
    }
}

/// The GMMU and UVM software-runtime model.
///
/// # Examples
///
/// ```
/// use uvm_core::{Gmmu, UvmConfig};
/// use uvm_types::{Bytes, Cycle};
///
/// let mut gmmu = Gmmu::new(UvmConfig::default());
/// let base = gmmu.malloc_managed(Bytes::mib(2));
/// let res = gmmu.handle_fault(base.page(), Cycle::ZERO);
/// assert!(gmmu.is_resident(base.page()));
/// assert!(res.fault_page_ready() > Cycle::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct Gmmu {
    cfg: UvmConfig,
    rng: SmallRng,
    allocs: Allocations,
    page_table: PageTable,
    frames: FrameAllocator,
    /// Dense page-indexed frame table: the allocator hands out a small
    /// dense page range, so a `Vec` beats a `HashMap` on every access.
    frame_of: DensePageMap<FrameId>,
    /// Traditional LRU list of *accessed* pages (LRU-4KB baseline).
    page_lru: LruQueue<PageId>,
    /// Hierarchical list of *valid* pages (pre-eviction policies).
    hier: HierarchicalLru,
    /// All resident pages, for random eviction and fallbacks.
    resident: IndexedPageSet,
    read_chan: PcieChannel,
    write_chan: PcieChannel,
    /// Next-free instants of the host runtime's fault-handling lanes
    /// (`cfg.fault_lanes` of them); a fault occupies the earliest lane.
    lanes: Vec<Cycle>,
    /// Sticky prefetcher kill-switch (over-subscription rule).
    prefetch_disabled: bool,
    /// Data-arrival times of in-flight (validated, still transferring)
    /// pages. Entries whose pin grace has lapsed are left in place —
    /// [`pin_level`](Self::pin_level) and
    /// [`ready_time`](Self::ready_time) compare against the clock, so
    /// stale entries behave exactly like absent ones.
    ready_at: DensePageMap<Cycle>,
    /// Prefetched pages not yet accessed (for accuracy accounting).
    unaccessed_prefetch: DensePageSet,
    /// Demand-migrated pages whose faulting warp has not yet replayed:
    /// hard-pinned from eviction so every far-fault is guaranteed to
    /// complete at least one access (bounding faults by accesses and
    /// making eviction/refault livelock impossible).
    unaccessed_demand: DensePageSet,
    /// Pages that have been evicted at least once (thrash detection).
    evicted_once: DensePageSet,
    stats: UvmStats,
}

impl Gmmu {
    /// Creates a driver with the given configuration and an idle PCI-e
    /// link calibrated to the paper's Table 1.
    pub fn new(cfg: UvmConfig) -> Self {
        let capacity = cfg.capacity.unwrap_or(Bytes::gib(1024));
        Gmmu {
            rng: SmallRng::seed_from_u64(cfg.rng_seed),
            allocs: Allocations::new(),
            page_table: PageTable::new(),
            frames: FrameAllocator::new(capacity),
            frame_of: DensePageMap::new(),
            page_lru: LruQueue::new(),
            hier: HierarchicalLru::new(),
            resident: IndexedPageSet::new(),
            read_chan: PcieChannel::new(PcieModel::pascal_x16()),
            write_chan: PcieChannel::new(PcieModel::pascal_x16()),
            lanes: vec![Cycle::ZERO; cfg.fault_lanes.max(1)],
            prefetch_disabled: false,
            unaccessed_prefetch: DensePageSet::new(),
            unaccessed_demand: DensePageSet::new(),
            ready_at: DensePageMap::new(),
            evicted_once: DensePageSet::new(),
            stats: UvmStats::new(),
            cfg,
        }
    }

    /// Registers a managed allocation (the `cudaMallocManaged`
    /// analogue) and returns its base virtual address.
    pub fn malloc_managed(&mut self, size: Bytes) -> VirtAddr {
        let id = self.allocs.allocate(size);
        self.allocs.get(id).base()
    }

    /// Registers a managed allocation and returns its id.
    pub fn malloc_managed_id(&mut self, size: Bytes) -> AllocId {
        self.allocs.allocate(size)
    }

    /// The allocation registry.
    pub fn allocations(&self) -> &Allocations {
        &self.allocs
    }

    /// `true` if `page` has a valid PTE (its data may still be in
    /// flight; see [`ready_time`](Self::ready_time)).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.page_table.is_valid(page)
    }

    /// If `page`'s migration is still in flight at `now`, the cycle at
    /// which its data arrives.
    pub fn ready_time(&mut self, page: PageId, now: Cycle) -> Option<Cycle> {
        match self.ready_at.get(page) {
            Some(t) if t > now => Some(t),
            Some(_) => {
                self.ready_at.remove(page);
                None
            }
            None => None,
        }
    }

    /// Records a warp access to a resident page: sets PTE flags and
    /// refreshes every LRU structure.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not resident (the engine must fault first).
    pub fn record_access(&mut self, page: PageId, write: bool) {
        self.page_table.mark_access(page, write);
        self.page_lru.touch(page);
        self.hier.on_access(page);
        self.unaccessed_demand.remove(page);
        if self.unaccessed_prefetch.remove(page) {
            self.stats.prefetched_used += 1;
        }
    }

    /// Services one distinct far-fault on `page` raised at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident, lies outside every managed
    /// allocation, or the device memory budget cannot accommodate the
    /// migration even after eviction.
    pub fn handle_fault(&mut self, page: PageId, now: Cycle) -> FaultResolution {
        assert!(
            !self.page_table.is_valid(page),
            "far-fault on already-resident {page}"
        );
        let alloc_id = self
            .allocs
            .find_by_page(page)
            .unwrap_or_else(|| panic!("far-fault on unmanaged {page}"))
            .id();

        self.stats.far_faults += 1;
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one lane");
        let handled = self.lanes[lane].max(now) + self.cfg.fault_latency;
        self.lanes[lane] = handled;

        // Make room for the faulty page. Only the *demand* page forces
        // eviction; demand eviction (LRU/Random 4 KB) stalls the
        // migration behind the write-back, pre-eviction does not.
        // Victim pinning is evaluated at the fault's *arrival* time:
        // state mutates now, so a page whose waiter has not yet been
        // able to replay (its data lands later) must stay protected.
        let (evicted, wb_barrier) = self.ensure_frames(1, handled, now);

        // The prefetcher fills only frames that are free after demand
        // eviction — aggressive prefetching that displaces resident
        // pages is counterproductive (Sec. 4.2). Bulk pre-eviction is
        // exactly what re-enables prefetching under over-subscription
        // (Sec. 5): evicting 64 KB–1 MB for one demand page leaves
        // room for the matching prefetch.
        // Prefetch is throttled when the read channel is congested:
        // a backlog beyond the configured cap means prefetch traffic
        // is already outpacing the link.
        let backlog = self.read_chan.next_free().since(handled);
        let mut prefetch = if backlog > self.cfg.prefetch_congestion_cap {
            Vec::new()
        } else {
            self.plan_prefetch(page, alloc_id)
        };
        let mut room = self.frames.free_frames().saturating_sub(1);
        for group in &mut prefetch {
            let keep = (room as usize).min(group.len());
            group.truncate(keep);
            room -= keep as u64;
        }
        prefetch.retain(|g| !g.is_empty());
        let prefetch_pages: usize = prefetch.iter().map(Vec::len).sum();
        let needed = 1 + prefetch_pages as u64;
        debug_assert!(needed <= self.frames.free_frames());

        let mut migrate_from = handled;
        if let Some(barrier) = wb_barrier {
            migrate_from = migrate_from.max(barrier);
        }

        // Fault group first (4 KB), then the prefetch groups.
        let mut ready = Vec::with_capacity(needed as usize);
        let t = self
            .read_chan
            .schedule(migrate_from, PAGE_SIZE)
            .finish;
        self.admit_page(page, t, false);
        ready.push((page, t));
        let mut last_finish = t;
        for group in prefetch {
            let size = PAGE_SIZE * group.len() as u64;
            let t = self.read_chan.schedule(migrate_from, size).finish;
            last_finish = last_finish.max(t);
            for p in group {
                self.admit_page(p, t, true);
                ready.push((p, t));
            }
        }
        // The fault is retired only once its migration completes: the
        // host runtime's lane stays occupied until the copy lands, so
        // fault admission throttles to PCI-e throughput instead of
        // racing unboundedly ahead of data arrival.
        self.lanes[lane] = self.lanes[lane].max(last_finish);

        self.update_prefetch_kill_switch();
        FaultResolution {
            ready,
            evicted,
            handled,
        }
    }

    /// The `cudaMemPrefetchAsync` analogue (Sec. 3): asynchronously
    /// migrates every non-resident page of `[start, start+size)` to the
    /// device, overlapping kernel execution. Contiguous invalid runs
    /// are grouped into transfers of up to 2 MB. Unlike a far-fault
    /// there is no 45 µs handling window — the host initiated the copy.
    ///
    /// Returns the `(page, data-ready cycle)` pairs of the migrated
    /// pages. Pages outside any managed allocation are skipped.
    ///
    /// # Panics
    ///
    /// Panics if making room requires evicting when every resident page
    /// is hard-pinned (budget far too small).
    pub fn mem_prefetch_async(
        &mut self,
        start: VirtAddr,
        size: Bytes,
        now: Cycle,
    ) -> Vec<(PageId, Cycle)> {
        let first = start.page().index();
        let last = if size == Bytes::ZERO {
            first
        } else {
            start.offset(size - Bytes::new(1)).page().index() + 1
        };
        let mut ready = Vec::new();
        let mut run: Vec<PageId> = Vec::new();
        let flush =
            |gmmu: &mut Self, run: &mut Vec<PageId>, ready: &mut Vec<(PageId, Cycle)>| {
                if run.is_empty() {
                    return;
                }
                for chunk in run.chunks(PAGES_PER_LARGE_PAGE as usize) {
                    let (_, barrier) = gmmu.ensure_frames(chunk.len() as u64, now, now);
                    let at = barrier.map_or(now, |b| b.max(now));
                    let t = gmmu
                        .read_chan
                        .schedule(at, PAGE_SIZE * chunk.len() as u64)
                        .finish;
                    for &p in chunk {
                        gmmu.admit_page(p, t, true);
                        ready.push((p, t));
                    }
                }
                run.clear();
            };
        for idx in first..last {
            let page = PageId::new(idx);
            let in_alloc = self.allocs.find_by_page(page).is_some();
            if in_alloc && !self.page_table.is_valid(page) {
                run.push(page);
            } else {
                flush(self, &mut run, &mut ready);
            }
        }
        flush(self, &mut run, &mut ready);
        self.update_prefetch_kill_switch();
        ready
    }

    /// Driver-side statistics.
    pub fn stats(&self) -> &UvmStats {
        &self.stats
    }

    /// Host→device (migration) channel statistics.
    pub fn read_stats(&self) -> &ChannelStats {
        self.read_chan.stats()
    }

    /// Device→host (write-back) channel statistics.
    pub fn write_stats(&self) -> &ChannelStats {
        self.write_chan.stats()
    }

    /// Resident page count.
    pub fn resident_pages(&self) -> u64 {
        self.page_table.valid_pages()
    }

    /// Device memory frame budget.
    pub fn capacity_frames(&self) -> u64 {
        self.frames.capacity_frames()
    }

    /// `true` once the over-subscription rule has disabled the
    /// prefetcher.
    pub fn prefetch_disabled(&self) -> bool {
        self.prefetch_disabled
    }

    /// The earliest instant a fault-handling lane becomes free.
    pub fn driver_free(&self) -> Cycle {
        self.lanes.iter().copied().min().unwrap_or(Cycle::ZERO)
    }

    /// The configuration in force.
    pub fn config(&self) -> &UvmConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Prefetch planning
    // ------------------------------------------------------------------

    /// Returns the prefetch transfer groups for a fault on `page`:
    /// each group is a set of pages moved as one PCI-e transfer (the
    /// faulty page itself is *not* included — it travels as its own
    /// 4 KB fault-group transfer).
    fn plan_prefetch(&mut self, page: PageId, alloc_id: AllocId) -> Vec<Vec<PageId>> {
        if self.prefetch_disabled {
            return Vec::new();
        }
        match self.cfg.prefetch {
            PrefetchPolicy::None => Vec::new(),
            PrefetchPolicy::Random => self.plan_random_prefetch(page, alloc_id),
            PrefetchPolicy::SequentialLocal => self.plan_sl_prefetch(page),
            PrefetchPolicy::Sequential512K => self.plan_sz_prefetch(page, alloc_id),
            PrefetchPolicy::TreeBasedNeighborhood => self.plan_tbn_prefetch(page, alloc_id),
        }
    }

    /// Rp: one random invalid 4 KB page from the faulty page's 2 MB
    /// large page, clipped to the allocation extent (Sec. 3.1).
    fn plan_random_prefetch(&mut self, page: PageId, alloc_id: AllocId) -> Vec<Vec<PageId>> {
        let alloc = self.allocs.get(alloc_id);
        let lp_first = page.large_page().first_page();
        let start = lp_first.index().max(alloc.first_page().index());
        let end = (lp_first.index() + PAGES_PER_LARGE_PAGE).min(alloc.end_page().index());
        let mut candidates: Vec<PageId> = Vec::with_capacity((end.saturating_sub(start)) as usize);
        candidates.extend(
            (start..end)
                .map(PageId::new)
                .filter(|&p| p != page && !self.page_table.is_valid(p)),
        );
        if candidates.is_empty() {
            return Vec::new();
        }
        let pick = candidates[self.rng.gen_range(0..candidates.len())];
        vec![vec![pick]]
    }

    /// SLp: the remaining invalid pages of the faulty page's 64 KB
    /// basic block, as one prefetch-group transfer (Sec. 3.2).
    fn plan_sl_prefetch(&self, page: PageId) -> Vec<Vec<PageId>> {
        let mut group: Vec<PageId> = Vec::with_capacity(uvm_types::PAGES_PER_BASIC_BLOCK as usize);
        group.extend(
            page.basic_block()
                .pages()
                .filter(|&p| p != page && !self.page_table.is_valid(p)),
        );
        if group.is_empty() {
            Vec::new()
        } else {
            vec![group]
        }
    }

    /// The Zheng et al. locality-aware prefetcher: 128 consecutive
    /// 4 KB pages starting from the faulty page, clipped to the
    /// allocation extent, moved as one transfer.
    fn plan_sz_prefetch(&self, page: PageId, alloc_id: AllocId) -> Vec<Vec<PageId>> {
        let alloc = self.allocs.get(alloc_id);
        let end = alloc.end_page().index();
        let mut group: Vec<PageId> = Vec::with_capacity(128);
        group.extend(
            (page.index() + 1..(page.index() + 128).min(end))
                .map(PageId::new)
                .filter(|&p| !self.page_table.is_valid(p)),
        );
        if group.is_empty() {
            Vec::new()
        } else {
            vec![group]
        }
    }

    /// TBNp: tree-balancing prefetch (Sec. 3.3). Contiguous candidate
    /// blocks are grouped into single transfers; the run containing the
    /// faulty page contributes its remaining pages as one group.
    fn plan_tbn_prefetch(&mut self, page: PageId, alloc_id: AllocId) -> Vec<Vec<PageId>> {
        let fault_block = page.basic_block();
        let alloc = self.allocs.get(alloc_id);
        let tree = alloc
            .tree_for_block(fault_block)
            .expect("fault block inside allocation has a tree");
        let planned = tree.plan_prefetch(fault_block);

        let mut blocks = planned;
        blocks.push(fault_block);
        blocks.sort_unstable_by_key(|b| b.index());
        let runs = group_contiguous(&blocks);

        let mut groups = Vec::with_capacity(runs.len());
        for (start, len) in runs {
            let mut pages: Vec<PageId> =
                Vec::with_capacity((len * uvm_types::PAGES_PER_BASIC_BLOCK) as usize);
            pages.extend(
                (0..len)
                    .flat_map(|i| start.add(i).pages())
                    .filter(|&p| p != page && !self.page_table.is_valid(p)),
            );
            if !pages.is_empty() {
                groups.push(pages);
            }
        }
        groups
    }

    // ------------------------------------------------------------------
    // Eviction
    // ------------------------------------------------------------------

    /// Frees frames until `needed` are available at driver time `t`.
    /// Returns the evicted pages and, for demand-eviction policies, the
    /// write-back completion barrier the migration must wait for.
    fn ensure_frames(
        &mut self,
        needed: u64,
        wb_time: Cycle,
        pin_time: Cycle,
    ) -> (Vec<PageId>, Option<Cycle>) {
        assert!(
            needed <= self.frames.capacity_frames(),
            "migration of {needed} pages exceeds total device memory"
        );
        let mut evicted = Vec::new();
        let mut barrier: Option<Cycle> = None;
        // Memory-threshold pre-eviction: keep the free-page buffer
        // topped up before anything else (Sec. 4.2). Buffer top-up is
        // asynchronous: it never stalls the migration.
        if self.cfg.free_buffer_frac > 0.0 {
            let buffer =
                (self.cfg.free_buffer_frac * self.frames.capacity_frames() as f64).ceil() as u64;
            while self.frames.free_frames() < buffer.max(needed) {
                let Some((pages, _)) = self.evict_once(wb_time, pin_time) else {
                    break;
                };
                evicted.extend(pages);
            }
        }
        while self.frames.free_frames() < needed {
            let Some((pages, wb_finish)) = self.evict_once(wb_time, pin_time) else {
                panic!(
                    "cannot evict: every resident page is a demand page \
                     awaiting its faulting warp ({} resident, {} free, \
                     {needed} needed) — the device budget is too small \
                     for the configured concurrency",
                    self.resident.len(),
                    self.frames.free_frames()
                );
            };
            if !self.cfg.evict.is_pre_eviction() {
                barrier = Some(barrier.map_or(wb_finish, |b| b.max(wb_finish)));
            }
            evicted.extend(pages);
        }
        (evicted, barrier)
    }

    /// Runs one eviction operation: selects victims per the configured
    /// policy, schedules their write-back, and invalidates them.
    /// Returns the evicted pages and the write-back finish time, or
    /// `None` if no victim is eligible.
    fn evict_once(&mut self, wb_time: Cycle, pin_time: Cycle) -> Option<(Vec<PageId>, Cycle)> {
        // Prefer fully unpinned victims; fall back to soft-pinned
        // (in-flight prefetched) pages. Hard-pinned demand pages are
        // never victims.
        let groups = self
            .select_victims(pin_time, Self::PIN_NONE)
            .or_else(|| self.select_victims(pin_time, Self::PIN_SOFT))?;
        let mut all = Vec::new();
        let mut finish = wb_time;
        for group in groups {
            if self.cfg.writeback_dirty_only {
                // Ablation: transfer only the dirty pages, one transfer
                // per contiguous dirty run — less write traffic, worse
                // per-transfer bandwidth.
                let mut run = 0u64;
                for &p in &group {
                    if self.page_table.flags(p).dirty {
                        run += 1;
                    } else if run > 0 {
                        let wb = self.write_chan.schedule(wb_time, PAGE_SIZE * run);
                        finish = finish.max(wb.finish);
                        run = 0;
                    }
                }
                if run > 0 {
                    let wb = self.write_chan.schedule(wb_time, PAGE_SIZE * run);
                    finish = finish.max(wb.finish);
                }
            } else {
                // The paper's design choice: the whole group is written
                // back as a single unit irrespective of clean/dirty
                // pages (Sec. 5.1).
                let size = PAGE_SIZE * group.len() as u64;
                let wb = self.write_chan.schedule(wb_time, size);
                finish = finish.max(wb.finish);
            }
            for &p in &group {
                self.expel_page(p);
            }
            all.extend(group);
        }
        if all.is_empty() {
            None
        } else {
            self.stats.evictions += 1;
            Some((all, finish))
        }
    }

    /// Chooses the victim page groups (each group = one write-back
    /// transfer) per the configured policy, honouring the LRU-top
    /// reservation and skipping in-flight pages.
    fn select_victims(&mut self, t: Cycle, max_pin: u8) -> Option<Vec<Vec<PageId>>> {
        match self.cfg.evict {
            EvictPolicy::LruPage => self.select_lru_page(t, max_pin).map(|p| vec![vec![p]]),
            EvictPolicy::RandomPage => self.select_random_page(t, max_pin).map(|p| vec![vec![p]]),
            EvictPolicy::SequentialLocal => self.select_sl_block(t, max_pin),
            EvictPolicy::TreeBasedNeighborhood => self.select_tbn_blocks(t, max_pin),
            EvictPolicy::LruLargePage => self.select_large_page(t, max_pin),
        }
    }

    /// Grace window (core cycles) during which a just-arrived page is
    /// still protected from eviction: it covers the faulting warp's
    /// replay (TLB miss + page walk + memory access), preventing the
    /// pathological migrate→evict→refault livelock.
    const PIN_GRACE: Duration = Duration::from_cycles(2_000);

    /// No pin: freely evictable.
    const PIN_NONE: u8 = 0;
    /// Soft pin: the page's migration is still in flight (or just
    /// landed); evictable only when nothing unpinned exists.
    const PIN_SOFT: u8 = 1;
    /// Hard pin: a demand page whose faulting warp has not replayed
    /// yet. Never evictable — this bounds far-faults by accesses.
    const PIN_HARD: u8 = 2;

    fn pin_level(&self, page: PageId, t: Cycle) -> u8 {
        if self.unaccessed_demand.contains(page) {
            return Self::PIN_HARD;
        }
        if self
            .ready_at
            .get(page)
            .is_some_and(|r| r + Self::PIN_GRACE > t)
        {
            return Self::PIN_SOFT;
        }
        Self::PIN_NONE
    }

    /// `true` if `block` holds at least one resident page with pin
    /// level at most `max_pin` — eviction takes that subset.
    fn block_evictable(&self, block: BasicBlockId, t: Cycle, max_pin: u8) -> bool {
        block
            .pages()
            .any(|p| self.page_table.is_valid(p) && self.pin_level(p, t) <= max_pin)
    }

    /// The resident pages of `block` with pin level at most `max_pin`.
    fn evictable_pages_of_block(&self, block: BasicBlockId, t: Cycle, max_pin: u8) -> Vec<PageId> {
        block
            .pages()
            .filter(|&p| self.page_table.is_valid(p) && self.pin_level(p, t) <= max_pin)
            .collect()
    }

    /// LRU-4KB: the oldest *accessed* page past the reserved prefix.
    fn select_lru_page(&mut self, t: Cycle, max_pin: u8) -> Option<PageId> {
        let reserved = (self.cfg.reserve_frac * self.page_lru.len() as f64).floor() as usize;
        self.page_lru
            .iter()
            .skip(reserved)
            .find(|&&p| self.pin_level(p, t) <= max_pin)
            .copied()
            // If everything past the reservation is pinned, fall back
            // to reserved entries, then to any resident page
            // (unaccessed prefetched pages are invisible to the
            // traditional LRU list).
            .or_else(|| {
                self.page_lru
                    .iter()
                    .find(|&&p| self.pin_level(p, t) <= max_pin)
                    .copied()
            })
            .or_else(|| {
                self.resident
                    .iter()
                    .find(|&p| self.pin_level(p, t) <= max_pin)
            })
    }

    /// Re: a uniformly random resident page.
    fn select_random_page(&mut self, t: Cycle, max_pin: u8) -> Option<PageId> {
        for _ in 0..32 {
            let p = self.resident.sample(&mut self.rng)?;
            if self.pin_level(p, t) <= max_pin {
                return Some(p);
            }
        }
        self.resident
            .iter()
            .find(|&p| self.pin_level(p, t) <= max_pin)
    }

    fn reserve_pages(&self) -> u64 {
        (self.cfg.reserve_frac * self.hier.total_pages() as f64).floor() as u64
    }

    /// SLe: the LRU basic block, written back whole (Sec. 5.1).
    fn select_sl_block(&mut self, t: Cycle, max_pin: u8) -> Option<Vec<Vec<PageId>>> {
        let reserve = self.reserve_pages();
        let hier = &self.hier;
        let block = hier
            .candidate(reserve, |b| self.block_evictable(b, t, max_pin))
            .or_else(|| hier.candidate(0, |b| self.block_evictable(b, t, max_pin)))?;
        Some(vec![self.evictable_pages_of_block(block, t, max_pin)])
    }

    /// TBNe: the LRU basic block plus the tree's cascade, grouped into
    /// contiguous write-back transfers (Sec. 5.2).
    fn select_tbn_blocks(&mut self, t: Cycle, max_pin: u8) -> Option<Vec<Vec<PageId>>> {
        let reserve = self.reserve_pages();
        let hier = &self.hier;
        let victim = hier
            .candidate(reserve, |b| self.block_evictable(b, t, max_pin))
            .or_else(|| hier.candidate(0, |b| self.block_evictable(b, t, max_pin)))?;
        let planned = self
            .allocs
            .find_by_page(victim.first_page())
            .and_then(|a| a.tree_for_block(victim))
            .map(|tree| tree.plan_eviction(victim))
            .unwrap_or_default();

        let mut blocks = vec![victim];
        blocks.extend(
            planned
                .into_iter()
                .filter(|&b| self.block_evictable(b, t, max_pin) && self.hier.block_pages(b) > 0),
        );
        blocks.sort_unstable_by_key(|b| b.index());
        blocks.dedup();
        let runs = group_contiguous(&blocks);
        let groups: Vec<Vec<PageId>> = runs
            .into_iter()
            .map(|(start, len)| {
                (0..len)
                    .flat_map(|i| self.evictable_pages_of_block(start.add(i), t, max_pin))
                    .collect::<Vec<_>>()
            })
            .filter(|g| !g.is_empty())
            .collect();
        if groups.is_empty() {
            None
        } else {
            Some(groups)
        }
    }

    /// LRU-2MB: evict the whole least-recently-used large page as one
    /// transfer (Sec. 7.5).
    fn select_large_page(&mut self, t: Cycle, max_pin: u8) -> Option<Vec<Vec<PageId>>> {
        let reserve = self.reserve_pages();
        let hier = &self.hier;
        let mut evictable = |lp| {
            hier.blocks_of(lp)
                .any(|b| self.block_evictable(b, t, max_pin))
        };
        let lp = hier
            .candidate_large_page(reserve, &mut evictable)
            .or_else(|| hier.candidate_large_page(0, &mut evictable))?;
        let blocks: Vec<BasicBlockId> = self.hier.blocks_of(lp).collect();
        let pages: Vec<PageId> = blocks
            .into_iter()
            .flat_map(|b| self.evictable_pages_of_block(b, t, max_pin))
            .collect();
        if pages.is_empty() {
            None
        } else {
            Some(vec![pages])
        }
    }

    // ------------------------------------------------------------------
    // Page state transitions
    // ------------------------------------------------------------------

    /// Makes `page` resident: allocates a frame, validates the PTE,
    /// and registers it in every tracking structure.
    fn admit_page(&mut self, page: PageId, ready: Cycle, prefetched: bool) {
        let frame = self
            .frames
            .allocate()
            .expect("ensure_frames guaranteed capacity");
        self.frame_of.insert(page, frame);
        self.page_table.validate(page);
        self.resident.insert(page);
        self.hier.on_validate(page);
        self.ready_at.insert(page, ready);
        if prefetched {
            self.unaccessed_prefetch.insert(page);
        } else {
            self.unaccessed_demand.insert(page);
        }
        if let Some(alloc) = self.allocs.find_by_block_mut(page.basic_block()) {
            if let Some(tree) = alloc.tree_for_block_mut(page.basic_block()) {
                tree.add_pages(page.basic_block(), 1);
            }
        }
        self.stats.pages_migrated += 1;
        if prefetched {
            self.stats.pages_prefetched += 1;
        }
        if self.evicted_once.contains(page) {
            self.stats.pages_thrashed += 1;
        }
    }

    /// Removes `page` from residency and every tracking structure.
    fn expel_page(&mut self, page: PageId) {
        let flags = self.page_table.invalidate(page);
        assert!(flags.valid, "expel of non-resident {page}");
        if !flags.dirty {
            self.stats.clean_pages_written_back += 1;
        }
        if self.unaccessed_prefetch.remove(page) {
            self.stats.prefetched_wasted += 1;
        }
        let frame = self
            .frame_of
            .remove(page)
            .expect("resident page has a frame");
        self.frames.free(frame);
        self.resident.remove(page);
        self.page_lru.remove(&page);
        self.hier.on_invalidate_page(page);
        self.ready_at.remove(page);
        self.unaccessed_demand.remove(page);
        if let Some(alloc) = self.allocs.find_by_block_mut(page.basic_block()) {
            if let Some(tree) = alloc.tree_for_block_mut(page.basic_block()) {
                tree.remove_pages(page.basic_block(), 1);
            }
        }
        self.evicted_once.insert(page);
        self.stats.pages_evicted += 1;
    }

    /// Applies the sticky prefetcher-disable rule after a migration.
    fn update_prefetch_kill_switch(&mut self) {
        if self.prefetch_disabled {
            return;
        }
        if self.cfg.free_buffer_frac > 0.0 {
            let threshold = ((1.0 - self.cfg.free_buffer_frac)
                * self.frames.capacity_frames() as f64)
                .floor() as u64;
            if self.frames.used_frames() >= threshold {
                self.prefetch_disabled = true;
            }
        }
        if self.cfg.disable_prefetch_on_oversubscription && self.frames.is_full() {
            self.prefetch_disabled = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;


    fn first_page_of_block(base: VirtAddr, block: u64) -> PageId {
        base.page().add(block * 16)
    }

    /// Touch (fault if needed, then access) a page, returning the time
    /// the access could proceed.
    fn touch(gmmu: &mut Gmmu, page: PageId, now: Cycle) -> Cycle {
        let t = if gmmu.is_resident(page) {
            gmmu.ready_time(page, now).unwrap_or(now)
        } else {
            gmmu.handle_fault(page, now).fault_page_ready()
        };
        gmmu.record_access(page, false);
        t
    }

    #[test]
    fn no_prefetch_migrates_single_pages() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::None));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..10 {
            now = touch(&mut g, base.page().add(i), now);
        }
        assert_eq!(g.stats().far_faults, 10);
        assert_eq!(g.stats().pages_migrated, 10);
        assert_eq!(g.stats().pages_prefetched, 0);
        assert_eq!(g.read_stats().histogram.count_4kib(), 10);
    }

    #[test]
    fn faults_serialize_through_a_single_lane_driver() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_prefetch(PrefetchPolicy::None)
                .with_fault_lanes(1),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let r1 = g.handle_fault(base.page(), Cycle::ZERO);
        let r2 = g.handle_fault(base.page().add(1), Cycle::ZERO);
        // Second fault's handling starts only after the first fault is
        // fully retired (handling window + migration landed).
        assert_eq!(
            r2.handled,
            r1.fault_page_ready() + g.config().fault_latency
        );
        assert!(r2.fault_page_ready() > r1.fault_page_ready());
    }

    #[test]
    fn fault_lanes_overlap_handling_windows() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_prefetch(PrefetchPolicy::None)
                .with_fault_lanes(4),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut handled = Vec::new();
        for i in 0..4 {
            handled.push(g.handle_fault(base.page().add(i), Cycle::ZERO).handled);
        }
        // All four faults finish handling in the same 45us window.
        assert!(handled.iter().all(|&h| h == handled[0]));
        // The fifth queues behind the earliest lane, which is occupied
        // until its fault's 4 KB migration lands.
        let fifth = g.handle_fault(base.page().add(4), Cycle::ZERO);
        let transfer = PcieModel::pascal_x16().transfer_time(PAGE_SIZE);
        assert_eq!(
            fifth.handled,
            handled[0] + transfer + g.config().fault_latency
        );
    }

    #[test]
    fn random_prefetch_stays_in_large_page() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::Random));
        let base = g.malloc_managed(Bytes::mib(4));
        let fault = base.page().add(600); // second large page
        let res = g.handle_fault(fault, Cycle::ZERO);
        assert_eq!(res.ready.len(), 2);
        let extra = res.ready[1].0;
        assert_eq!(extra.large_page(), fault.large_page());
        assert_ne!(extra, fault);
        assert_eq!(g.stats().pages_prefetched, 1);
        // Both travel as separate 4 KB transfers.
        assert_eq!(g.read_stats().histogram.count_4kib(), 2);
    }

    #[test]
    fn sequential_local_prefetch_migrates_the_block() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::SequentialLocal));
        let base = g.malloc_managed(Bytes::mib(2));
        let fault = base.page().add(5); // middle of block 0
        let res = g.handle_fault(fault, Cycle::ZERO);
        assert_eq!(res.ready.len(), 16);
        for i in 0..16 {
            assert!(g.is_resident(base.page().add(i)));
        }
        // Fault group 4 KB + prefetch group 60 KB.
        assert_eq!(g.read_stats().histogram.count(PAGE_SIZE), 1);
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(60)), 1);
        // A second fault in the same block never happens (all valid);
        // fault in the next block migrates that block.
        let res2 = g.handle_fault(base.page().add(16), Cycle::ZERO);
        assert_eq!(res2.ready.len(), 16);
    }

    #[test]
    fn mem_prefetch_async_migrates_a_range_in_bulk() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::None));
        let base = g.malloc_managed(Bytes::mib(4));
        let ready = g.mem_prefetch_async(base, Bytes::mib(4), Cycle::ZERO);
        assert_eq!(ready.len(), 1024);
        assert_eq!(g.stats().pages_migrated, 1024);
        assert_eq!(g.stats().pages_prefetched, 1024);
        assert_eq!(g.stats().far_faults, 0);
        // Two 2 MB transfers, no 4 KB piecemeal traffic.
        assert_eq!(g.read_stats().histogram.count(Bytes::mib(2)), 2);
        assert_eq!(g.read_stats().histogram.count_4kib(), 0);
        // Subsequent accesses never fault.
        for i in 0..1024 {
            assert!(g.is_resident(base.page().add(i)));
        }
    }

    #[test]
    fn mem_prefetch_async_skips_resident_pages_and_foreign_ranges() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::None));
        let base = g.malloc_managed(Bytes::kib(128));
        g.handle_fault(base.page().add(3), Cycle::ZERO);
        let ready = g.mem_prefetch_async(base, Bytes::mib(64), Cycle::ZERO);
        // 32 pages requested... allocation covers 32 pages, one already
        // resident; the huge range clips to the allocation.
        assert_eq!(ready.len(), 31);
        // The resident page split the run into two transfers.
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(12)), 1);
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(112)), 1);
    }

    #[test]
    fn mem_prefetch_async_respects_the_memory_budget() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::SequentialLocal),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        // Touch the first 128 pages so there is something evictable.
        for i in 0..128 {
            let res = g.handle_fault(base.page().add(i), now);
            now = res.fault_page_ready();
            g.record_access(base.page().add(i), false);
        }
        let ready = g.mem_prefetch_async(
            base.offset(Bytes::mib(1)),
            Bytes::mib(1),
            now + Duration::from_cycles(10_000),
        );
        assert_eq!(ready.len(), 256);
        assert!(g.resident_pages() <= g.capacity_frames());
        assert!(g.stats().pages_evicted > 0);
    }

    #[test]
    fn mem_prefetch_async_empty_and_partial_ranges() {
        let mut g = Gmmu::new(UvmConfig::default());
        let base = g.malloc_managed(Bytes::mib(1));
        assert!(g.mem_prefetch_async(base, Bytes::ZERO, Cycle::ZERO).is_empty());
        // A 1-byte range covers exactly one page.
        let ready = g.mem_prefetch_async(base, Bytes::new(1), Cycle::ZERO);
        assert_eq!(ready.len(), 1);
        // A range straddling a page boundary covers both pages.
        let ready = g.mem_prefetch_async(
            base.offset(Bytes::new(4095)),
            Bytes::new(2),
            Cycle::ZERO,
        );
        assert_eq!(ready.len(), 1, "page 0 already resident, page 1 migrates");
    }

    #[test]
    fn zheng_512k_prefetches_128_consecutive_pages() {
        let mut g = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::Sequential512K));
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::ZERO);
        // Fault page + 127 consecutive prefetched pages, crossing 64 KB
        // block boundaries (unlike SLp).
        assert_eq!(res.ready.len(), 128);
        assert!(g.is_resident(base.page().add(127)));
        assert!(!g.is_resident(base.page().add(128)));
        // One 4 KB fault group + one 508 KB prefetch group.
        assert_eq!(g.read_stats().histogram.count(PAGE_SIZE), 1);
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(508)), 1);
        // Near the allocation end, the plan clips.
        let tail = base.page().add(511);
        let res = g.handle_fault(tail, Cycle::ZERO);
        assert_eq!(res.ready.len(), 1);
    }

    #[test]
    fn tbnp_fig2a_through_the_driver() {
        let mut g = Gmmu::new(
            UvmConfig::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood),
        );
        let base = g.malloc_managed(Bytes::kib(512));
        let mut now = Cycle::ZERO;
        for b in [1u64, 3, 5, 7] {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        assert_eq!(g.stats().pages_migrated, 4 * 16);
        // Fifth fault on block 0 cascades: blocks 0, 2, 4, 6 migrate.
        let res = g.handle_fault(first_page_of_block(base, 0), now);
        assert_eq!(res.ready.len(), 4 * 16);
        assert_eq!(g.resident_pages(), 128);
        assert_eq!(g.stats().far_faults, 5);
    }

    #[test]
    fn tbnp_contiguous_blocks_group_into_one_transfer() {
        // Fig. 2b: after blocks 1,3 then 0 (+2 prefetched), the fault on
        // block 4 migrates blocks 4..8 as 4 KB + 252 KB transfers.
        let mut g = Gmmu::new(
            UvmConfig::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood),
        );
        let base = g.malloc_managed(Bytes::kib(512));
        let mut now = Cycle::ZERO;
        for b in [1u64, 3, 0] {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        let _ = g.handle_fault(first_page_of_block(base, 4), now);
        assert_eq!(g.read_stats().histogram.count(Bytes::kib(252)), 1);
        assert_eq!(g.resident_pages(), 128);
    }

    fn oversub_config(evict: EvictPolicy) -> UvmConfig {
        // 1 MB budget (256 frames), 2 MB working set.
        UvmConfig::default()
            .with_capacity(Bytes::mib(1))
            .with_prefetch(PrefetchPolicy::None)
            .with_evict(evict)
    }

    #[test]
    fn lru_eviction_picks_oldest_accessed_page() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::LruPage));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..256 {
            now = touch(&mut g, base.page().add(i), now);
        }
        assert_eq!(g.stats().pages_evicted, 0);
        // Next fault evicts page 0, the LRU.
        let res = g.handle_fault(base.page().add(256), now);
        assert_eq!(res.evicted, vec![base.page()]);
        assert!(!g.is_resident(base.page()));
        assert_eq!(g.stats().pages_evicted, 1);
    }

    #[test]
    fn demand_eviction_stalls_behind_writeback() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::LruPage));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..256 {
            now = touch(&mut g, base.page().add(i), now);
        }
        let res = g.handle_fault(base.page().add(256), now);
        // The migration waited for the 4 KB write-back after handling.
        let wb = PcieModel::pascal_x16().transfer_time(PAGE_SIZE);
        let read = PcieModel::pascal_x16().transfer_time(PAGE_SIZE);
        assert_eq!(res.fault_page_ready(), res.handled + wb + read);
    }

    #[test]
    fn pre_eviction_does_not_stall_migration() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::SequentialLocal));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..256 {
            now = touch(&mut g, base.page().add(i), now);
        }
        let res = g.handle_fault(base.page().add(256), now);
        let read = PcieModel::pascal_x16().transfer_time(PAGE_SIZE);
        assert_eq!(res.fault_page_ready(), res.handled + read);
        // And a whole 64 KB block was written back as one unit.
        assert_eq!(g.write_stats().histogram.count(Bytes::kib(64)), 1);
        assert_eq!(g.stats().pages_evicted, 16);
    }

    #[test]
    fn tbne_cascade_groups_writebacks() {
        // Reproduce Fig. 8 through the driver: fill 512 KB, evict via
        // TBNe with LRU order blocks 1, 3, 4, 0.
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::kib(512))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::TreeBasedNeighborhood),
        );
        let base = g.malloc_managed(Bytes::kib(512));
        let other = g.malloc_managed(Bytes::kib(512));
        let mut now = Cycle::ZERO;
        // Fill all 8 blocks of the first allocation's tree.
        for b in 0..8 {
            for p in 0..16 {
                now = touch(&mut g, base.page().add(b * 16 + p), now);
            }
        }
        // Access order for LRU: make blocks 1, 3, 4, 0 the LRU order,
        // then 2, 5, 6, 7 more recent.
        for b in [1u64, 3, 4, 0, 2, 5, 6, 7] {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        // One fault in the second allocation forces eviction: victim
        // is block 1 of the first tree.
        let res = g.handle_fault(other.page(), now);
        // Block 1 evicted alone (no cascade at 7/8 valid).
        assert_eq!(res.evicted.len(), 16);
        assert_eq!(res.evicted[0].basic_block().index(), 1);
    }

    #[test]
    fn large_page_eviction_moves_2mb_as_one_transfer() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(2))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::LruLargePage),
        );
        let base = g.malloc_managed(Bytes::mib(4));
        let mut now = Cycle::ZERO;
        for i in 0..512 {
            now = touch(&mut g, base.page().add(i), now);
        }
        // Let the grace pin on the most recent migration expire.
        now = now + Duration::from_cycles(10_000);
        let res = g.handle_fault(base.page().add(512), now);
        assert_eq!(res.evicted.len(), 512);
        assert_eq!(g.write_stats().histogram.count(Bytes::mib(2)), 1);
    }

    #[test]
    fn prefetch_kill_switch_on_oversubscription() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::SequentialLocal)
                .with_evict(EvictPolicy::LruPage)
                .with_disable_prefetch_on_oversubscription(true),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        // 16 block faults fill the 256-frame budget exactly.
        for b in 0..16 {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        assert!(g.prefetch_disabled());
        let before = g.stats().pages_prefetched;
        let _ = touch(&mut g, first_page_of_block(base, 16), now);
        assert_eq!(g.stats().pages_prefetched, before, "no prefetch after full");
        assert_eq!(g.stats().pages_evicted, 1, "single 4 KB demand eviction");
    }

    #[test]
    fn free_page_buffer_disables_prefetch_early_and_keeps_frames_free() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::SequentialLocal)
                .with_evict(EvictPolicy::LruPage)
                .with_free_buffer_frac(0.10),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for b in 0..32 {
            now = touch(&mut g, first_page_of_block(base, b), now);
        }
        assert!(g.prefetch_disabled());
        // The buffer keeps ~10% of 256 frames free at fault time.
        assert!(g.capacity_frames() - g.resident_pages() >= 25);
        assert!(g.stats().pages_evicted > 0);
    }

    #[test]
    fn reservation_protects_top_of_lru() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::LruPage)
                .with_reserve_frac(0.10),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for i in 0..256 {
            now = touch(&mut g, base.page().add(i), now);
        }
        // 10% of 256 = 25 pages reserved; the victim is page 25.
        let res = g.handle_fault(base.page().add(256), now);
        assert_eq!(res.evicted, vec![base.page().add(25)]);
        assert!(g.is_resident(base.page()));
    }

    #[test]
    fn thrashing_counts_re_migrations() {
        let mut g = Gmmu::new(oversub_config(EvictPolicy::LruPage));
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        // Two linear sweeps over 512 pages with a 256-frame budget:
        // the second sweep re-migrates evicted pages.
        for _ in 0..2 {
            for i in 0..512 {
                now = touch(&mut g, base.page().add(i), now);
            }
        }
        assert!(g.stats().pages_thrashed > 0);
        assert!(g.stats().pages_thrashed <= g.stats().pages_evicted);
    }

    #[test]
    fn random_eviction_is_seeded_and_reproducible() {
        let run = |seed| {
            let mut g = Gmmu::new(oversub_config(EvictPolicy::RandomPage).with_rng_seed(seed));
            let base = g.malloc_managed(Bytes::mib(2));
            let mut now = Cycle::ZERO;
            for i in 0..300 {
                now = touch(&mut g, base.page().add(i), now);
            }
            g.stats().clone()
        };
        assert_eq!(run(7), run(7));
        assert_eq!(run(7).pages_evicted, 300 - 256);
    }

    #[test]
    fn ready_time_reports_in_flight_pages() {
        let mut g = Gmmu::new(
            UvmConfig::default().with_prefetch(PrefetchPolicy::SequentialLocal),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::ZERO);
        let (last_page, last_ready) = *res.ready.last().unwrap();
        // Immediately after the fault, the prefetched tail is in flight.
        assert_eq!(g.ready_time(last_page, Cycle::ZERO), Some(last_ready));
        // Once its transfer completes it is no longer in flight.
        assert_eq!(g.ready_time(last_page, last_ready), None);
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn fault_on_resident_page_panics() {
        let mut g = Gmmu::new(UvmConfig::default());
        let base = g.malloc_managed(Bytes::mib(2));
        g.handle_fault(base.page(), Cycle::ZERO);
        g.handle_fault(base.page(), Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "unmanaged")]
    fn fault_outside_allocations_panics() {
        let mut g = Gmmu::new(UvmConfig::default());
        g.handle_fault(PageId::new(1_000_000), Cycle::ZERO);
    }

    #[test]
    fn prefetch_trimmed_to_budget() {
        // A 1 MB budget with a 2 MB allocation: TBNp would love to pull
        // large chunks, but migrations never exceed the budget.
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(1))
                .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                .with_evict(EvictPolicy::TreeBasedNeighborhood),
        );
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for b in 0..32 {
            now = touch(&mut g, first_page_of_block(base, b), now);
            assert!(g.resident_pages() <= g.capacity_frames());
        }
        assert!(g.stats().pages_evicted > 0);
    }

    #[test]
    fn congested_read_channel_suppresses_prefetch() {
        // Saturate the read channel with a user-directed bulk copy,
        // then fault: the prefetcher must stand down (demand-only)
        // until the backlog drains below the congestion cap.
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_prefetch(PrefetchPolicy::SequentialLocal)
                .with_prefetch_congestion_cap(Duration::from_micros(50.0)),
        );
        let big = g.malloc_managed(Bytes::mib(8));
        let other = g.malloc_managed(Bytes::mib(2));
        // ~8 MiB of transfers = ~730us of backlog at peak bandwidth.
        g.mem_prefetch_async(big, Bytes::mib(8), Cycle::ZERO);
        let res = g.handle_fault(other.page(), Cycle::ZERO);
        assert_eq!(res.ready.len(), 1, "no prefetch while congested");
        // Far in the future the backlog has drained: prefetch resumes.
        let later = Cycle::ZERO + Duration::from_micros(5_000.0);
        let res = g.handle_fault(other.page().add(16), later);
        assert_eq!(res.ready.len(), 16, "prefetch resumes when idle");
    }

    #[test]
    fn prefetch_accuracy_accounting_through_the_driver() {
        let mut g = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::kib(128)) // 32 frames
                .with_prefetch(PrefetchPolicy::SequentialLocal)
                .with_evict(EvictPolicy::SequentialLocal),
        );
        let base = g.malloc_managed(Bytes::mib(1));
        let mut now = Cycle::ZERO;
        // Touch two pages per block (the fault page plus one
        // prefetched neighbour): 14 of 16 prefetched pages per block
        // are never accessed.
        for b in 0..4 {
            now = touch(&mut g, first_page_of_block(base, b), now);
            now = touch(&mut g, first_page_of_block(base, b).add(1), now);
        }
        now = now + Duration::from_cycles(10_000);
        // Force evictions of the untouched prefetched pages.
        for b in 4..6 {
            now = touch(&mut g, first_page_of_block(base, b), now);
            now = now + Duration::from_cycles(10_000);
        }
        let s = g.stats();
        assert!(s.prefetched_wasted > 0, "unused prefetched pages evicted");
        assert!(s.prefetched_used > 0, "accessed pages counted as used");
        assert!(s.prefetch_accuracy() < 1.0);
        // Clean write-backs: nothing was written, so every evicted page
        // was clean.
        assert_eq!(s.clean_pages_written_back, s.pages_evicted);
    }

    #[test]
    fn dirty_only_writeback_moves_fewer_bytes() {
        let run = |dirty_only: bool| {
            let mut g = Gmmu::new(
                UvmConfig::default()
                    .with_capacity(Bytes::kib(256))
                    .with_prefetch(PrefetchPolicy::SequentialLocal)
                    .with_evict(EvictPolicy::SequentialLocal)
                    .with_writeback_dirty_only(dirty_only),
            );
            let base = g.malloc_managed(Bytes::mib(1));
            let mut now = Cycle::ZERO;
            // Sweep 128 pages writing every fourth page, through a
            // 64-frame budget.
            for i in 0..128u64 {
                let p = base.page().add(i);
                if !g.is_resident(p) {
                    let res = g.handle_fault(p, now);
                    now = res.fault_page_ready() + Duration::from_cycles(3_000);
                }
                g.record_access(p, i % 4 == 0);
            }
            (g.write_stats().bytes, g.stats().pages_evicted)
        };
        let (bulk_bytes, bulk_evicted) = run(false);
        let (dirty_bytes, dirty_evicted) = run(true);
        assert_eq!(bulk_evicted, dirty_evicted, "same eviction decisions");
        assert_eq!(bulk_bytes, PAGE_SIZE * bulk_evicted, "bulk writes everything");
        assert!(
            dirty_bytes.bytes() < bulk_bytes.bytes() / 2,
            "dirty-only writes ~1/4 of the pages ({dirty_bytes} vs {bulk_bytes})"
        );
    }

    #[test]
    fn driver_latency_is_45us() {
        let mut g = Gmmu::new(UvmConfig::default());
        let base = g.malloc_managed(Bytes::mib(2));
        let res = g.handle_fault(base.page(), Cycle::new(1000));
        assert_eq!(
            res.handled,
            Cycle::new(1000) + Duration::from_micros(45.0)
        );
    }
}
