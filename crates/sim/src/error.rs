//! Typed failures for the hardened experiment executor.
//!
//! A sweep of hundreds of deduplicated runs must not die because one
//! run panics, hangs, or hits a rotten cache entry. The executor
//! isolates each run and reports what went wrong as a [`RunError`];
//! [`ExecutionReport`] carries the per-submission outcomes so callers
//! can keep the completed siblings.

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::exec::RunKey;
use crate::run::RunResult;

/// Why one simulation run produced no result.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The run panicked inside the simulator; the panic was caught at
    /// the run boundary and the sweep continued.
    Panicked {
        /// Workload name of the failed run.
        name: String,
        /// Dedup key of the failed run.
        key: RunKey,
        /// The panic payload, if it was a string.
        message: String,
        /// Attempts made (1 = no retry budget or first try fatal).
        attempts: u32,
    },
    /// The run exceeded the executor's per-run wall-clock timeout.
    TimedOut {
        /// Workload name of the failed run.
        name: String,
        /// Dedup key of the failed run.
        key: RunKey,
        /// The configured per-run limit.
        timeout: Duration,
        /// Attempts made.
        attempts: u32,
    },
    /// The simulation finished but a durability side-effect failed —
    /// trace export to a full or read-only disk, a checkpoint that
    /// could not be written or belongs to a foreign revision, or an
    /// invariant-audit violation (see
    /// [`SimError`](crate::run::SimError)).
    Failed {
        /// Workload name of the failed run.
        name: String,
        /// Dedup key of the failed run.
        key: RunKey,
        /// The rendered [`SimError`](crate::run::SimError).
        message: String,
        /// Attempts made.
        attempts: u32,
    },
}

impl RunError {
    /// Workload name of the failed run.
    pub fn name(&self) -> &str {
        match self {
            RunError::Panicked { name, .. }
            | RunError::TimedOut { name, .. }
            | RunError::Failed { name, .. } => name,
        }
    }

    /// Dedup key of the failed run.
    pub fn key(&self) -> RunKey {
        match self {
            RunError::Panicked { key, .. }
            | RunError::TimedOut { key, .. }
            | RunError::Failed { key, .. } => *key,
        }
    }

    /// Attempts made before giving up.
    pub fn attempts(&self) -> u32 {
        match self {
            RunError::Panicked { attempts, .. }
            | RunError::TimedOut { attempts, .. }
            | RunError::Failed { attempts, .. } => *attempts,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panicked {
                name,
                key,
                message,
                attempts,
            } => write!(
                f,
                "run '{name}' ({}) panicked after {attempts} attempt(s): {message}",
                key.to_hex()
            ),
            RunError::TimedOut {
                name,
                key,
                timeout,
                attempts,
            } => write!(
                f,
                "run '{name}' ({}) exceeded the {:.1?} per-run timeout \
                 after {attempts} attempt(s)",
                key.to_hex(),
                timeout
            ),
            RunError::Failed {
                name,
                key,
                message,
                attempts,
            } => write!(
                f,
                "run '{name}' ({}) failed after {attempts} attempt(s): {message}",
                key.to_hex()
            ),
        }
    }
}

impl Error for RunError {}

/// The outcome of a fault-tolerant sweep: one entry per submission, in
/// submission order, plus every failure encountered.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Per-submission results; `None` where the run failed (its error
    /// is in `failures`).
    pub results: Vec<Option<Arc<RunResult>>>,
    /// Every distinct failed run of this sweep.
    pub failures: Vec<RunError>,
    /// Unique runs the sweep journal recorded as completed before a
    /// crash and that were satisfied from a verified spill-cache entry
    /// instead of re-simulating (only non-zero under
    /// [`Plan::resume`](crate::Plan::resume)).
    pub recovered: usize,
    /// Unique runs the journal recorded as submitted-but-unfinished
    /// (interrupted by the crash) that this sweep restarted — from
    /// their latest valid checkpoint when one exists.
    pub resumed: usize,
}

impl ExecutionReport {
    /// `true` if every submission produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.results.iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let key = RunKey::from_digest(0xABC);
        let p = RunError::Panicked {
            name: "hotspot".into(),
            key,
            message: "boom".into(),
            attempts: 2,
        };
        let t = RunError::TimedOut {
            name: "bfs".into(),
            key,
            timeout: Duration::from_millis(250),
            attempts: 1,
        };
        assert!(p.to_string().contains("hotspot"));
        assert!(p.to_string().contains("boom"));
        assert!(p.to_string().contains("2 attempt"));
        assert!(t.to_string().contains("bfs"));
        assert!(t.to_string().contains("timeout"));
        assert_eq!(p.name(), "hotspot");
        assert_eq!(t.key(), key);
        assert_eq!(t.attempts(), 1);
    }

    #[test]
    fn empty_report_is_complete() {
        assert!(ExecutionReport::default().is_complete());
        let partial = ExecutionReport {
            results: vec![None],
            ..ExecutionReport::default()
        };
        assert!(!partial.is_complete());
    }
}
