//! Run-plan execution: deduplicating, memoizing, parallel driver for
//! experiment sweeps.
//!
//! Every figure of the paper is a sweep of independent simulations,
//! and each simulation is a pure function of `(workload, RunOptions)`
//! — embarrassingly parallel and perfectly cacheable. This module
//! exploits both properties:
//!
//! * [`RunKey`] — a canonical, process-stable 128-bit hash of the
//!   workload identity plus every [`RunOptions`] field (including the
//!   fault-injection plan) and the simulator revision;
//! * [`Plan`] — collects the runs an experiment set needs *before*
//!   executing anything, so identical configurations shared by
//!   several figures (Figs. 3/4/5 share one prefetcher sweep) are
//!   simulated once;
//! * [`Executor`] — executes the unique runs of a plan across a
//!   `std::thread::scope` worker pool, memoizes every [`RunResult`]
//!   in-process, and optionally spills results as checksummed JSON
//!   under a cache directory (`results/cache/`) so `all_experiments`
//!   can resume.
//!
//! The executor is hardened against the failure modes of long sweeps:
//!
//! * a panicking run is caught at the run boundary and reported as a
//!   typed [`RunError`] while its siblings complete;
//! * an optional per-run wall-clock timeout abandons hung runs;
//! * both failure kinds get a bounded retry budget;
//! * spill entries carry a `uvmspill v3 crc=…` header and are
//!   published atomically (temp file + rename), so a crash mid-write
//!   or bit rot is detected, the entry quarantined as `*.corrupt`,
//!   and the run recomputed instead of misread;
//! * typed simulation failures (checkpoint I/O, trace export to a
//!   dead disk, invariant-audit violations) surface as
//!   [`RunError::Failed`] instead of panics;
//! * an optional write-ahead sweep journal
//!   ([`Executor::with_journal`]) records submit/complete per unique
//!   run, and [`Plan::resume`] replays it after a crash — completed
//!   runs are served from verified spill entries, interrupted ones
//!   restart from their latest checkpoint.
//!
//! Results are returned in submission order, so a plan's output is
//! byte-identical no matter how many workers execute it.
//!
//! # Sweep prefix forking
//!
//! Runs carrying a [`Warmup`](crate::Warmup) that agree on every field
//! *except* the tail `prefetch`/`evict` pair share a byte-identical
//! warm-up prefix. The executor detects such groups at execution time,
//! simulates the prefix once ([`crate::simulate_prefix`]), snapshots
//! the engine, and fans the per-policy tails out across the worker
//! pool ([`crate::resume_run`]) — turning a P-point sweep from
//! `O(P × run)` into `O(warm-up + P × tail)`. Forked results are
//! byte-identical to cold runs of the same options (the
//! fork-equivalence suite asserts this), so the memo and spill caches
//! never distinguish the two. Disable with
//! [`Executor::with_prefix_forking`]`(false)`.
//!
//! # Examples
//!
//! ```
//! use uvm_sim::{Executor, RunOptions};
//! use uvm_workloads::LinearSweep;
//!
//! let sweep = LinearSweep { pages: 64, repeats: 1, thread_blocks: 2 };
//! let exec = Executor::new(2);
//! let mut plan = exec.plan();
//! plan.submit(&sweep, RunOptions::default());
//! plan.submit(&sweep, RunOptions::default()); // duplicate: simulated once
//! let results = plan.execute();
//! assert_eq!(results.len(), 2);
//! assert_eq!(exec.runs_executed(), 1);
//! ```

use std::collections::HashMap;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};

use uvm_core::{HugePageStats, PolicyRegistry};
use uvm_types::hash::StableHasher;
use uvm_types::{Bytes, Duration};
use uvm_workloads::Workload;

use crate::error::{ExecutionReport, RunError};
use crate::journal::Journal;
use crate::run::{
    simulate_prefix, try_resume_run, try_run_workload, RunOptions, RunResult, SweepPrefix,
};

/// Spill-format version; bump when [`RunResult`] fields change so
/// stale cache entries are ignored rather than misread.
const SPILL_VERSION: u64 = 3;

/// Simulator behaviour revision, folded into every [`RunKey`]. Bump
/// when a model change alters results without any [`RunOptions`]
/// field changing, so stale spill entries stop matching. (v3: the
/// markov/learned prediction chain is capped at `degree` steps.)
const SIM_REVISION: u64 = 3;

/// A canonical, process-stable identity of one simulation run.
///
/// Two runs get the same key exactly when they simulate the same
/// workload (same [`Workload::signature`]) under the same
/// [`RunOptions`] — fault plan included — on the same simulator
/// revision; any change produces a different key. Durability-only
/// options (the checkpoint spec, the audit flag) are deliberately
/// *excluded*: they must never change results, so a checkpointed run
/// and a plain run share one cache entry — and the key doubles as the
/// checkpoint file's name, letting a resumed sweep find the partial
/// state of the exact run it is re-attempting. The key also names the
/// on-disk spill entry, so it must not depend on the process's hash
/// seeds — it is built on the FNV-based [`StableHasher`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(u128);

/// Hashes every behaviour-affecting [`RunOptions`] field shared by a
/// sweep's prefix — everything except the tail `prefetch`/`evict`
/// pair. Both the run key and the prefix-group digest build on this,
/// so the two can never silently disagree about what "same prefix"
/// means. The `checkpoint`, `audit`, and `engine_threads` fields are
/// intentionally NOT hashed: checkpointing off must be a strict no-op
/// on identity, and every sharded-execution width produces the
/// byte-identical schedule.
fn hash_shared_opts(h: &mut StableHasher, opts: &RunOptions) {
    h.write_opt_f64(opts.memory_frac);
    h.write_bool(opts.disable_prefetch_on_oversubscription);
    h.write_f64(opts.free_buffer_frac);
    h.write_f64(opts.reserve_frac);
    // GpuConfig is plain data; its Debug rendering covers every
    // field, including the optional radix-walk model.
    h.write_str(&format!("{:?}", opts.gpu));
    h.write_bool(opts.trace);
    // Trace export is part of the run identity; belt-and-braces on top
    // of the executor treating exporting runs as uncacheable, so even
    // a stale pre-existing spill entry can never satisfy one.
    match &opts.trace_export {
        None => h.write_bool(false),
        Some(path) => {
            h.write_bool(true);
            h.write_str(&path.display().to_string());
        }
    }
    match opts.fault_lanes {
        None => h.write_bool(false),
        Some(lanes) => {
            h.write_bool(true);
            h.write_u64(lanes as u64);
        }
    }
    h.write_bool(opts.writeback_dirty_only);
    h.write_u64(opts.rng_seed);
    opts.fault_plan.hash_into(h);
    // The warm-up is part of the run identity (fork lineage): a warmed
    // run and an unwarmed run of the same tail policies are different
    // simulations, and every fork of one prefix hashes that prefix.
    match opts.warmup {
        None => h.write_bool(false),
        Some(w) => {
            h.write_bool(true);
            h.write_u64(w.kernels as u64);
            h.write_str(&format!("{:?}", w.prefetch));
            h.write_str(&format!("{:?}", w.evict));
        }
    }
}

/// Digest of a run's *shared prefix*: the workload plus every option
/// except the tail policies. Two runs fork from one warm-up snapshot
/// exactly when their digests match (and a warm-up is present).
fn prefix_digest(workload: &dyn Workload, opts: &RunOptions) -> u128 {
    let mut h = StableHasher::new();
    h.write_str("uvm-prefix-v2");
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_u64(SIM_REVISION);
    h.write_str(workload.name());
    h.write_str(&workload.signature());
    hash_shared_opts(&mut h, opts);
    h.finish()
}

impl RunKey {
    /// Computes the key of `(workload, opts)`.
    pub fn new(workload: &dyn Workload, opts: &RunOptions) -> Self {
        let mut h = StableHasher::new();
        h.write_str("uvm-runkey-v4");
        h.write_str(env!("CARGO_PKG_VERSION"));
        h.write_u64(SIM_REVISION);
        h.write_str(workload.name());
        h.write_str(&workload.signature());
        // Specs hash by *canonical* Display form — aliases resolved
        // through the registry first — so `LRNp:table=…` and
        // `learned:table=…` name one cache entry, `markov:depth=2` and
        // `markov:table=4096,...` name distinct ones, and parameter
        // *order* never matters. A spec the registry rejects (caught
        // later by `RunOptions::validate`) hashes as written.
        let registry = PolicyRegistry::global();
        let prefetch = registry
            .canonical_prefetch_spec(&opts.prefetch)
            .unwrap_or_else(|_| opts.prefetch.clone());
        let evict = registry
            .canonical_evict_spec(&opts.evict)
            .unwrap_or_else(|_| opts.evict.clone());
        h.write_str(&prefetch.to_string());
        h.write_str(&evict.to_string());
        // A `learned:table=PATH` run is defined by the table's
        // *content*, not its path: retraining over the same file must
        // not be served stale spill entries, so the bytes fold in too.
        // Keyed off the canonical name so alias spellings get the same
        // staleness protection.
        if prefetch.name() == "learned" {
            if let Some(path) = prefetch.param("table") {
                match std::fs::read(path) {
                    Ok(bytes) => h.write_bytes(&bytes),
                    Err(_) => h.write_str("unreadable"),
                }
            }
        }
        hash_shared_opts(&mut h, opts);
        RunKey(h.finish())
    }

    /// A key from a raw digest; lets tests fabricate keys without a
    /// workload in hand.
    #[cfg(test)]
    pub(crate) fn from_digest(digest: u128) -> Self {
        RunKey(digest)
    }

    /// The key as a fixed-width hex string (the spill file stem and
    /// the checkpoint file stem).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a key back from its [`to_hex`](Self::to_hex) rendering —
    /// the form the sweep journal stores on disk.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(RunKey)
    }
}

struct Submission<'w> {
    key: RunKey,
    workload: &'w dyn Workload,
    opts: RunOptions,
}

/// A batch of runs collected before execution.
///
/// Built by [`Executor::plan`]; submissions are deduplicated by
/// [`RunKey`] at execution time.
pub struct Plan<'e, 'w> {
    exec: &'e Executor,
    subs: Vec<Submission<'w>>,
}

impl<'e, 'w> Plan<'e, 'w> {
    /// Adds one run to the plan and returns its index in the result
    /// vector [`execute`](Self::execute) will produce.
    ///
    /// # Panics
    ///
    /// Panics if the options fail [`RunOptions::validate`] — bad
    /// submissions die here, at the call site that wrote them, not in
    /// a worker thread deep in the engine.
    ///
    /// [`RunOptions::validate`]: crate::RunOptions::validate
    pub fn submit(&mut self, workload: &'w dyn Workload, opts: RunOptions) -> usize {
        opts.assert_valid();
        self.subs.push(Submission {
            key: RunKey::new(workload, &opts),
            workload,
            opts,
        });
        self.subs.len() - 1
    }

    /// Number of submitted runs (duplicates included).
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// `true` if nothing has been submitted.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Number of *unique* run keys currently in the plan.
    pub fn unique_runs(&self) -> usize {
        let mut keys: Vec<RunKey> = self.subs.iter().map(|s| s.key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Executes the plan and returns one result per submission, in
    /// submission order. Duplicate keys are simulated once; results
    /// already memoized (or spilled to disk) by the executor are not
    /// simulated at all.
    ///
    /// # Panics
    ///
    /// Panics with an aggregated message if any run fails (panic or
    /// timeout) after its retry budget. Use
    /// [`try_execute`](Self::try_execute) to keep the surviving
    /// results instead.
    pub fn execute(self) -> Vec<Arc<RunResult>> {
        let report = self.exec.execute_report(self.subs, false);
        if !report.failures.is_empty() {
            let mut msg = String::from("experiment sweep failed:\n");
            for f in &report.failures {
                msg.push_str("  ");
                msg.push_str(&f.to_string());
                msg.push('\n');
            }
            panic!("{msg}");
        }
        report
            .results
            .into_iter()
            .map(|r| r.expect("report without failures has every result"))
            .collect()
    }

    /// Executes the plan without aborting on failed runs: every
    /// submission whose simulation completed gets its result, each
    /// distinct failure is reported as a [`RunError`], and the sweep
    /// as a whole always returns.
    pub fn try_execute(self) -> ExecutionReport {
        self.exec.execute_report(self.subs, false)
    }

    /// Executes the plan in crash-recovery mode: the executor's sweep
    /// journal (see [`Executor::with_journal`]) is replayed first, so
    /// spill-cache hits the journal vouches for count as `recovered`
    /// and members the journal shows as interrupted are restarted and
    /// counted as `resumed` — from their latest valid checkpoint when
    /// [`RunOptions::with_checkpoint`] is on. Without a journal this
    /// is identical to [`try_execute`](Self::try_execute).
    ///
    /// [`RunOptions::with_checkpoint`]: crate::RunOptions::with_checkpoint
    pub fn resume(self) -> ExecutionReport {
        self.exec.execute_report(self.subs, true)
    }
}

/// The deduplicating, memoizing, fault-tolerant run executor.
///
/// One executor is meant to live for a whole experiment session (all
/// figures of one binary invocation): its in-process cache is what
/// lets later figures reuse the sweeps of earlier ones, and its
/// failure log accumulates across plans so a final
/// [`failure_report`](Executor::failure_report) covers the session.
pub struct Executor {
    jobs: usize,
    spill_dir: Option<PathBuf>,
    run_timeout: Option<std::time::Duration>,
    run_retries: u32,
    prefix_forking: bool,
    journal: Option<Journal>,
    cache: Mutex<HashMap<RunKey, Arc<RunResult>>>,
    failures: Mutex<Vec<RunError>>,
    executed: AtomicUsize,
    hits: AtomicUsize,
    quarantined: AtomicUsize,
    prefixes: AtomicUsize,
}

impl Executor {
    /// An executor running up to `jobs` simulations concurrently.
    /// `jobs == 0` selects the machine's available parallelism,
    /// resolved once here — never re-queried per plan.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        Executor {
            jobs,
            spill_dir: None,
            run_timeout: None,
            run_retries: 0,
            prefix_forking: true,
            journal: None,
            cache: Mutex::new(HashMap::new()),
            failures: Mutex::new(Vec::new()),
            executed: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            prefixes: AtomicUsize::new(0),
        }
    }

    /// Enables the JSON spill cache under `dir` (typically
    /// `results/cache/`). Completed runs — except trace-capturing and
    /// trace-exporting ones, which are uncacheable — are written
    /// atomically as `<runkey-hex>.json` with a checksum header;
    /// later executions (same or future process) load them instead of
    /// re-simulating. Corrupt entries are renamed to `*.json.corrupt`
    /// and recomputed. Delete the directory to clear the cache.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Sets a per-run wall-clock timeout. Each run then simulates on
    /// a watchdog thread; if it does not finish within `limit` it is
    /// abandoned and reported as [`RunError::TimedOut`]. (The
    /// abandoned thread still runs to completion in the background —
    /// the simulator has no cancellation points — so timeouts trade
    /// memory for liveness.)
    pub fn with_run_timeout(mut self, limit: std::time::Duration) -> Self {
        self.run_timeout = Some(limit);
        self
    }

    /// Grants every run `retries` extra attempts after a panic or
    /// timeout before it is reported as failed.
    pub fn with_run_retries(mut self, retries: u32) -> Self {
        self.run_retries = retries;
        self
    }

    /// Enables the write-ahead sweep journal at `path` (see
    /// [`crate::Journal`]). Each unique run appends a submit record
    /// before simulating and a done record the moment its result is
    /// durably stored, so a sweep re-run with [`Plan::resume`] after a
    /// crash — SIGKILL included — skips journal-vouched spill hits and
    /// restarts only the interrupted members. Pair with
    /// [`with_spill_dir`](Self::with_spill_dir): without a spill cache
    /// the journal still attributes interruptions but has no stored
    /// results to recover.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(Journal::new(path));
        self
    }

    /// Enables or disables sweep prefix forking (on by default).
    /// Disabled, every warmed run simulates its own warm-up in place —
    /// same results, no sharing; the sweep bench uses this as its
    /// cold baseline.
    pub fn with_prefix_forking(mut self, enabled: bool) -> Self {
        self.prefix_forking = enabled;
        self
    }

    /// The worker-pool width.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Simulations actually executed to completion (cache misses) so
    /// far.
    pub fn runs_executed(&self) -> usize {
        self.executed.load(Ordering::Relaxed)
    }

    /// Submissions satisfied from the in-process or spill cache.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Spill-cache entries found corrupt, quarantined as
    /// `*.json.corrupt`, and recomputed.
    pub fn quarantined_entries(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Shared warm-up prefixes simulated (each one served a group of
    /// forked tails that would otherwise have re-simulated it).
    pub fn prefixes_simulated(&self) -> usize {
        self.prefixes.load(Ordering::Relaxed)
    }

    /// Every failed run recorded by this executor, across all plans.
    pub fn failures(&self) -> Vec<RunError> {
        self.lock_failures().clone()
    }

    /// An end-of-sweep failure report, or `None` when every run
    /// completed cleanly and no cache entry was quarantined.
    pub fn failure_report(&self) -> Option<String> {
        let failures = self.lock_failures();
        let quarantined = self.quarantined_entries();
        if failures.is_empty() && quarantined == 0 {
            return None;
        }
        let mut s = String::from("== sweep failure report ==\n");
        s.push_str(&format!(
            "{} failed run(s), {} quarantined spill entr{}\n",
            failures.len(),
            quarantined,
            if quarantined == 1 { "y" } else { "ies" },
        ));
        for f in failures.iter() {
            s.push_str("  - ");
            s.push_str(&f.to_string());
            s.push('\n');
        }
        s.push_str(&format!(
            "{} run(s) executed, {} cache hit(s)\n",
            self.runs_executed(),
            self.cache_hits(),
        ));
        Some(s)
    }

    /// Starts an empty plan against this executor.
    pub fn plan(&self) -> Plan<'_, '_> {
        Plan {
            exec: self,
            subs: Vec::new(),
        }
    }

    /// Convenience: a single run through the cache machinery.
    pub fn run_one(&self, workload: &dyn Workload, opts: RunOptions) -> Arc<RunResult> {
        let mut plan = self.plan();
        plan.submit(workload, opts);
        plan.execute().pop().expect("one submission, one result")
    }

    /// A lock that survives a worker's panic: the data under it is
    /// only ever replaced wholesale, so a poisoned guard still holds
    /// consistent state.
    fn lock_cache(&self) -> MutexGuard<'_, HashMap<RunKey, Arc<RunResult>>> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_failures(&self) -> MutexGuard<'_, Vec<RunError>> {
        self.failures.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// One isolated attempt at a unit of simulation work: panics are
    /// caught at this boundary and, when a timeout is configured, the
    /// work runs on a watchdog thread so a hang cannot stall the pool.
    ///
    /// `inline` and `remote` must compute the same value; `remote` is
    /// the `'static` variant the watchdog thread can own (workload
    /// cloned, prefix behind an `Arc`). Only one of the two runs.
    fn isolated<T: Send + 'static>(
        &self,
        inline: impl FnOnce() -> T,
        remote: impl FnOnce() -> T + Send + 'static,
    ) -> Result<T, Failure> {
        let Some(limit) = self.run_timeout else {
            return catch_unwind(AssertUnwindSafe(inline))
                .map_err(|payload| Failure::Panic(panic_message(payload)));
        };
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(remote)).map_err(panic_message);
            let _ = tx.send(outcome);
        });
        match rx.recv_timeout(limit) {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(message)) => Err(Failure::Panic(message)),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(Failure::Timeout(limit)),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(Failure::Panic(
                "watchdog thread died before sending a result".into(),
            )),
        }
    }

    /// Runs `attempt` up to `1 + run_retries` times; returns the first
    /// success or the last failure paired with the attempt count.
    fn with_retries<T>(
        &self,
        mut attempt: impl FnMut(&Self) -> Result<T, Failure>,
    ) -> Result<T, (Failure, u32)> {
        let attempts = 1 + self.run_retries;
        let mut last = None;
        for n in 1..=attempts {
            match attempt(self) {
                Ok(value) => return Ok(value),
                Err(failure) => last = Some((failure, n)),
            }
        }
        Err(last.expect("at least one attempt was made"))
    }

    /// Simulates `sub` cold (or warmed in place) with isolation and
    /// the retry budget. Typed simulation failures (I/O, checkpoint,
    /// audit) share the retry budget with panics and timeouts — a
    /// transient disk hiccup gets the same second chance.
    fn simulate(&self, sub: &Submission<'_>) -> Result<RunResult, RunError> {
        self.with_retries(|exec| {
            let workload = sub.workload.clone_box();
            let opts = sub.opts.clone();
            exec.isolated(
                || try_run_workload(sub.workload, sub.opts.clone()),
                move || try_run_workload(workload.as_ref(), opts),
            )
            .and_then(|res| res.map_err(|e| Failure::Sim(e.to_string())))
        })
        .map_err(|(failure, attempts)| failure.into_run_error(sub, attempts))
    }

    /// Simulates a group's shared warm-up prefix with isolation and
    /// the retry budget. Failures are reported per group member by the
    /// caller, so this returns the raw [`Failure`].
    fn simulate_group_prefix(
        &self,
        sub: &Submission<'_>,
    ) -> Result<Arc<SweepPrefix>, (Failure, u32)> {
        self.with_retries(|exec| {
            let workload = sub.workload.clone_box();
            let opts = sub.opts.clone();
            exec.isolated(
                || Arc::new(simulate_prefix(sub.workload, &sub.opts)),
                move || Arc::new(simulate_prefix(workload.as_ref(), &opts)),
            )
        })
    }

    /// Forks `prefix` and simulates `sub`'s tail with isolation and
    /// the retry budget.
    fn simulate_tail(
        &self,
        prefix: &Arc<SweepPrefix>,
        sub: &Submission<'_>,
    ) -> Result<RunResult, RunError> {
        self.with_retries(|exec| {
            let prefix_remote = Arc::clone(prefix);
            let opts = sub.opts.clone();
            exec.isolated(
                || try_resume_run(prefix, &sub.opts),
                move || try_resume_run(&prefix_remote, &opts),
            )
            .and_then(|res| res.map_err(|e| Failure::Sim(e.to_string())))
        })
        .map_err(|(failure, attempts)| failure.into_run_error(sub, attempts))
    }

    /// Runs `f(0..len)` across the worker pool and collects the
    /// outcomes by index. `f` must not panic (simulation panics are
    /// already caught inside [`Executor::isolated`]).
    fn parallel_map<T: Send>(&self, len: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(len).max(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(f(i));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("worker pool drained every slot")
            })
            .collect()
    }

    fn execute_report(&self, subs: Vec<Submission<'_>>, resume: bool) -> ExecutionReport {
        // Crash-recovery mode replays the sweep journal before
        // touching the caches, so spill hits can be attributed to
        // journal-vouched completions and re-runs to interruptions.
        let replay = match (&self.journal, resume) {
            (Some(j), true) => Some(j.replay()),
            _ => None,
        };
        let mut recovered = 0usize;
        let mut resumed = 0usize;
        // Resolve each submission against the caches; collect the
        // unique keys that still need simulating, in first-seen order.
        let mut todo: Vec<&Submission<'_>> = Vec::new();
        {
            let mut cache = self.lock_cache();
            let mut claimed: Vec<RunKey> = Vec::new();
            for sub in &subs {
                // An exporting run's deliverable is the trace *file*,
                // which only an actual simulation writes: a memo or
                // spill hit would skip `write_export` and silently
                // produce no trace (e.g. after the user deleted the
                // .uvmt). Exporting runs therefore always simulate.
                let cacheable = sub.opts.trace_export.is_none();
                if cacheable {
                    if cache.contains_key(&sub.key) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if let Some(spilled) = self.load_spill(sub.key) {
                        // The spill entry passed its checksum AND the
                        // journal saw this run complete: a genuine
                        // crash recovery, not a routine warm cache.
                        if replay.as_ref().is_some_and(|r| r.is_completed(sub.key)) {
                            recovered += 1;
                        }
                        cache.insert(sub.key, Arc::new(spilled));
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                if claimed.contains(&sub.key) {
                    // Duplicate within this plan: simulated once.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if replay.as_ref().is_some_and(|r| r.was_interrupted(sub.key)) {
                    resumed += 1;
                }
                claimed.push(sub.key);
                todo.push(sub);
            }
        }

        // Write-ahead: journal every run we are about to simulate
        // before any worker starts, so a crash at ANY later point
        // leaves each of them attributable as interrupted.
        if let Some(journal) = &self.journal {
            for sub in &todo {
                let _ = journal.record_submitted(sub.key, sub.workload.name());
            }
        }

        let mut failures: Vec<RunError> = Vec::new();
        if !todo.is_empty() {
            // Workers publish each completed run durably (spill entry
            // + journal done record) the moment it finishes — see
            // `publish` — so only the memo insert happens here.
            let outcomes = self.execute_todo(&todo);
            let mut cache = self.lock_cache();
            for (sub, outcome) in todo.iter().zip(outcomes) {
                match outcome {
                    Ok(result) => {
                        cache.insert(sub.key, Arc::new(result));
                    }
                    Err(err) => failures.push(err),
                }
            }
        }

        if !failures.is_empty() {
            self.lock_failures().extend(failures.iter().cloned());
        }
        let cache = self.lock_cache();
        let results = subs
            .iter()
            .map(|sub| cache.get(&sub.key).map(Arc::clone))
            .collect();
        ExecutionReport {
            results,
            failures,
            recovered,
            resumed,
        }
    }

    /// Durably publishes one completed run from a worker thread: the
    /// spill entry first, then the journal `D` record that vouches for
    /// it. Ordered so a crash between the two can only lose the
    /// vouching, never fabricate it — `Plan::resume` then re-runs the
    /// member, which is safe.
    fn publish(&self, sub: &Submission<'_>, result: &RunResult) {
        self.store_spill(sub.key, &sub.opts, result);
        if let Some(journal) = &self.journal {
            let _ = journal.record_done(sub.key);
        }
    }

    /// Simulates the deduplicated `todo` list, forking shared warm-up
    /// prefixes where possible, and returns one outcome per entry.
    ///
    /// Phase A runs the cold/in-place runs and the shared prefixes on
    /// one pool pass; phase B fans the forked tails of the successful
    /// prefixes out on a second pass. A failed prefix fails every
    /// member of its group (each with its own key and name).
    fn execute_todo(&self, todo: &[&Submission<'_>]) -> Vec<Result<RunResult, RunError>> {
        // Group warmed runs by shared-prefix digest, in first-seen
        // order; everything else (and singleton groups, which gain
        // nothing from a snapshot) simulates cold.
        let mut cold: Vec<usize> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        if self.prefix_forking {
            let mut by_digest: HashMap<u128, usize> = HashMap::new();
            for (i, sub) in todo.iter().enumerate() {
                if sub.opts.warmup.is_some() {
                    let digest = prefix_digest(sub.workload, &sub.opts);
                    match by_digest.get(&digest) {
                        Some(&g) => groups[g].push(i),
                        None => {
                            by_digest.insert(digest, groups.len());
                            groups.push(vec![i]);
                        }
                    }
                } else {
                    cold.push(i);
                }
            }
            groups.retain(|members| {
                if members.len() < 2 {
                    cold.extend(members.iter().copied());
                    false
                } else {
                    true
                }
            });
            cold.sort_unstable();
        } else {
            cold.extend(0..todo.len());
        }

        enum Job {
            Cold(usize),
            Prefix(usize),
        }
        enum Done {
            Run(usize, Box<Result<RunResult, RunError>>),
            Prefix(usize, Result<Arc<SweepPrefix>, (Failure, u32)>),
        }
        let jobs: Vec<Job> = cold
            .iter()
            .map(|&i| Job::Cold(i))
            .chain((0..groups.len()).map(Job::Prefix))
            .collect();

        let phase_a = self.parallel_map(jobs.len(), |j| match jobs[j] {
            Job::Cold(i) => {
                let outcome = self.simulate(todo[i]);
                if let Ok(result) = &outcome {
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    self.publish(todo[i], result);
                }
                Done::Run(i, Box::new(outcome))
            }
            Job::Prefix(g) => {
                let outcome = self.simulate_group_prefix(todo[groups[g][0]]);
                if outcome.is_ok() {
                    self.prefixes.fetch_add(1, Ordering::Relaxed);
                }
                Done::Prefix(g, outcome)
            }
        });

        let mut outcomes: Vec<Option<Result<RunResult, RunError>>> =
            todo.iter().map(|_| None).collect();
        let mut tails: Vec<(usize, Arc<SweepPrefix>)> = Vec::new();
        for done in phase_a {
            match done {
                Done::Run(i, outcome) => outcomes[i] = Some(*outcome),
                Done::Prefix(g, Ok(prefix)) => {
                    tails.extend(groups[g].iter().map(|&i| (i, Arc::clone(&prefix))));
                }
                Done::Prefix(g, Err((failure, attempts))) => {
                    for &i in &groups[g] {
                        outcomes[i] = Some(Err(failure.clone().into_run_error(todo[i], attempts)));
                    }
                }
            }
        }

        let phase_b = self.parallel_map(tails.len(), |j| {
            let (i, ref prefix) = tails[j];
            let outcome = self.simulate_tail(prefix, todo[i]);
            if let Ok(result) = &outcome {
                self.executed.fetch_add(1, Ordering::Relaxed);
                self.publish(todo[i], result);
            }
            (i, outcome)
        });
        for (i, outcome) in phase_b {
            outcomes[i] = Some(outcome);
        }

        outcomes
            .into_iter()
            .map(|o| o.expect("every todo entry resolved by phase A or B"))
            .collect()
    }

    fn spill_path(&self, key: RunKey) -> Option<PathBuf> {
        self.spill_dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", key.to_hex())))
    }

    fn load_spill(&self, key: RunKey) -> Option<RunResult> {
        let path = self.spill_path(key)?;
        let text = fs::read_to_string(&path).ok()?;
        match spill::decode_entry(&text) {
            Some(result) => Some(result),
            None => {
                // Truncated, bit-flipped, or version-skewed entry:
                // quarantine it for post-mortem and recompute the run.
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                let _ = fs::rename(&path, path.with_extension("json.corrupt"));
                None
            }
        }
    }

    fn store_spill(&self, key: RunKey, opts: &RunOptions, result: &RunResult) {
        // Traces are huge and figure-local; trace runs are memoized
        // in-process only. Exporting runs never spill at all — their
        // point is the side-effect file, which a spill hit in a later
        // process would silently skip.
        if opts.trace || opts.trace_export.is_some() {
            return;
        }
        let Some(path) = self.spill_path(key) else {
            return;
        };
        if let Some(dir) = path.parent() {
            if fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        // Atomic publish: write a private temp file, then rename it
        // into place, so a crash mid-write never leaves a truncated
        // `.json` for a later process to trip over. Best-effort: a
        // failed spill only costs a future re-run.
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        if fs::write(&tmp, spill::encode_entry(result)).is_err() || fs::rename(&tmp, &path).is_err()
        {
            let _ = fs::remove_file(&tmp);
        }
    }
}

/// A failed isolation attempt, not yet tied to a particular
/// submission: a prefix failure fans out into one [`RunError`] per
/// group member.
#[derive(Clone, Debug)]
enum Failure {
    Panic(String),
    Timeout(std::time::Duration),
    /// A typed [`SimError`](crate::run::SimError) — checkpoint I/O,
    /// trace export to a dead disk, or an invariant-audit violation —
    /// rendered to a string so it stays `Clone` for prefix fan-out.
    Sim(String),
}

impl Failure {
    fn into_run_error(self, sub: &Submission<'_>, attempts: u32) -> RunError {
        let name = sub.workload.name().to_string();
        match self {
            Failure::Panic(message) => RunError::Panicked {
                name,
                key: sub.key,
                message,
                attempts,
            },
            Failure::Timeout(timeout) => RunError::TimedOut {
                name,
                key: sub.key,
                timeout,
                attempts,
            },
            Failure::Sim(message) => RunError::Failed {
                name,
                key: sub.key,
                message,
                attempts,
            },
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Hand-rolled JSON encode/decode for [`RunResult`] spill entries.
///
/// The workspace builds offline (no serde); each entry is a one-line
/// `uvmspill v3 crc=<fnv128-hex>` header followed by a flat JSON
/// object with `f64` fields stored as exact IEEE-754 bit patterns so
/// round-trips are lossless. The checksum covers the JSON body;
/// entries whose header, checksum, version, or body fail to validate
/// decode to `None`.
mod spill {
    use super::*;

    /// Encodes a full spill entry: checksum header plus JSON body.
    pub(super) fn encode_entry(r: &RunResult) -> String {
        let body = encode(r);
        let mut h = StableHasher::new();
        h.write_bytes(body.as_bytes());
        format!("uvmspill v{SPILL_VERSION} crc={:032x}\n{body}", h.finish())
    }

    /// Validates the header and checksum, then decodes the body.
    pub(super) fn decode_entry(text: &str) -> Option<RunResult> {
        let (header, body) = text.split_once('\n')?;
        let rest = header.strip_prefix("uvmspill v")?;
        let (version, crc_hex) = rest.split_once(" crc=")?;
        if version.parse::<u64>().ok()? != SPILL_VERSION {
            return None;
        }
        let crc = u128::from_str_radix(crc_hex, 16).ok()?;
        let mut h = StableHasher::new();
        h.write_bytes(body.as_bytes());
        if h.finish() != crc {
            return None;
        }
        decode(body)
    }

    fn encode(r: &RunResult) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        push_field(&mut s, "v", SPILL_VERSION);
        s.push_str(",\"name\":\"");
        escape_into(&mut s, &r.name);
        s.push('"');
        push_field(&mut s, ",total_time", r.total_time.cycles());
        s.push_str(",\"kernel_times\":[");
        for (i, t) in r.kernel_times.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&t.cycles().to_string());
        }
        s.push(']');
        push_field(&mut s, ",footprint", r.footprint.bytes());
        match r.capacity {
            None => s.push_str(",\"capacity\":null"),
            Some(c) => push_field(&mut s, ",capacity", c.bytes()),
        }
        push_field(&mut s, ",accesses", r.accesses);
        push_field(&mut s, ",far_faults", r.far_faults);
        push_field(&mut s, ",pages_migrated", r.pages_migrated);
        push_field(&mut s, ",pages_prefetched", r.pages_prefetched);
        push_field(&mut s, ",pages_evicted", r.pages_evicted);
        push_field(&mut s, ",pages_thrashed", r.pages_thrashed);
        push_field(&mut s, ",prefetched_used", r.prefetched_used);
        push_field(&mut s, ",prefetched_wasted", r.prefetched_wasted);
        push_field(
            &mut s,
            ",clean_pages_written_back",
            r.clean_pages_written_back,
        );
        push_field(
            &mut s,
            ",read_bandwidth_bits",
            r.read_bandwidth_gbps.to_bits(),
        );
        push_field(
            &mut s,
            ",write_bandwidth_bits",
            r.write_bandwidth_gbps.to_bits(),
        );
        push_field(&mut s, ",read_transfers_4k", r.read_transfers_4k);
        push_field(&mut s, ",read_transfers", r.read_transfers);
        push_field(&mut s, ",read_bytes", r.read_bytes.bytes());
        push_field(&mut s, ",write_bytes", r.write_bytes.bytes());
        push_field(&mut s, ",transfer_retries", r.transfer_retries);
        push_field(&mut s, ",transfer_giveups", r.transfer_giveups);
        push_field(&mut s, ",migration_retries", r.migration_retries);
        push_field(&mut s, ",migration_giveups", r.migration_giveups);
        push_field(&mut s, ",emergency_evictions", r.emergency_evictions);
        push_field(&mut s, ",fault_jitter_cycles", r.fault_jitter_cycles);
        push_field(&mut s, ",hp_coalesces", r.huge_pages.coalesces);
        push_field(&mut s, ",hp_splinters", r.huge_pages.splinters);
        push_field(
            &mut s,
            ",hp_forced_splinters",
            r.huge_pages.forced_splinters,
        );
        push_field(&mut s, ",hp_alloc_splits", r.huge_pages.alloc_splits);
        push_field(&mut s, ",hp_alloc_merges", r.huge_pages.alloc_merges);
        push_field(
            &mut s,
            ",hp_regions_reserved",
            r.huge_pages.regions_reserved,
        );
        push_field(&mut s, ",hp_region_steals", r.huge_pages.region_steals);
        s.push('}');
        s
    }

    fn push_field(s: &mut String, key_with_comma: &str, v: u64) {
        let (comma, key) = match key_with_comma.strip_prefix(',') {
            Some(rest) => (",", rest),
            None => ("", key_with_comma),
        };
        s.push_str(comma);
        s.push('"');
        s.push_str(key);
        s.push_str("\":");
        s.push_str(&v.to_string());
    }

    fn escape_into(s: &mut String, raw: &str) {
        for c in raw.chars() {
            match c {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
                c => s.push(c),
            }
        }
    }

    fn decode(text: &str) -> Option<RunResult> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let fields = p.object()?;
        let u = |k: &str| -> Option<u64> {
            fields
                .iter()
                .find(|(n, _)| n == k)
                .and_then(|(_, v)| match v {
                    Value::Num(n) => Some(*n),
                    _ => None,
                })
        };
        if u("v")? != SPILL_VERSION {
            return None;
        }
        let name = fields.iter().find_map(|(n, v)| match (n.as_str(), v) {
            ("name", Value::Str(s)) => Some(s.clone()),
            _ => None,
        })?;
        let kernel_times = fields.iter().find_map(|(n, v)| match (n.as_str(), v) {
            ("kernel_times", Value::Arr(items)) => items
                .iter()
                .map(|v| match v {
                    Value::Num(n) => Some(Duration::from_cycles(*n)),
                    _ => None,
                })
                .collect::<Option<Vec<_>>>(),
            _ => None,
        })?;
        let capacity = fields.iter().find_map(|(n, v)| match (n.as_str(), v) {
            ("capacity", Value::Null) => Some(None),
            ("capacity", Value::Num(c)) => Some(Some(Bytes::new(*c))),
            _ => None,
        })?;
        Some(RunResult {
            name,
            total_time: Duration::from_cycles(u("total_time")?),
            kernel_times,
            footprint: Bytes::new(u("footprint")?),
            capacity,
            accesses: u("accesses")?,
            far_faults: u("far_faults")?,
            pages_migrated: u("pages_migrated")?,
            pages_prefetched: u("pages_prefetched")?,
            pages_evicted: u("pages_evicted")?,
            pages_thrashed: u("pages_thrashed")?,
            prefetched_used: u("prefetched_used")?,
            prefetched_wasted: u("prefetched_wasted")?,
            clean_pages_written_back: u("clean_pages_written_back")?,
            read_bandwidth_gbps: f64::from_bits(u("read_bandwidth_bits")?),
            write_bandwidth_gbps: f64::from_bits(u("write_bandwidth_bits")?),
            read_transfers_4k: u("read_transfers_4k")?,
            read_transfers: u("read_transfers")?,
            read_bytes: Bytes::new(u("read_bytes")?),
            write_bytes: Bytes::new(u("write_bytes")?),
            transfer_retries: u("transfer_retries")?,
            transfer_giveups: u("transfer_giveups")?,
            migration_retries: u("migration_retries")?,
            migration_giveups: u("migration_giveups")?,
            emergency_evictions: u("emergency_evictions")?,
            fault_jitter_cycles: u("fault_jitter_cycles")?,
            huge_pages: HugePageStats {
                coalesces: u("hp_coalesces")?,
                splinters: u("hp_splinters")?,
                forced_splinters: u("hp_forced_splinters")?,
                alloc_splits: u("hp_alloc_splits")?,
                alloc_merges: u("hp_alloc_merges")?,
                regions_reserved: u("hp_regions_reserved")?,
                region_steals: u("hp_region_steals")?,
            },
            traces: Vec::new(),
        })
    }

    enum Value {
        Num(u64),
        Str(String),
        Null,
        Arr(Vec<Value>),
    }

    /// Minimal parser for the subset of JSON `encode` emits: one flat
    /// object of unsigned integers, strings, `null`, and integer
    /// arrays.
    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn ws(&mut self) {
            while self.b.get(self.i).is_some_and(u8::is_ascii_whitespace) {
                self.i += 1;
            }
        }

        fn eat(&mut self, c: u8) -> Option<()> {
            self.ws();
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                Some(())
            } else {
                None
            }
        }

        fn object(&mut self) -> Option<Vec<(String, Value)>> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            self.ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Some(fields);
            }
            loop {
                let key = self.string()?;
                self.eat(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Some(fields);
                    }
                    _ => return None,
                }
            }
        }

        fn value(&mut self) -> Option<Value> {
            self.ws();
            match self.b.get(self.i)? {
                b'"' => Some(Value::Str(self.string()?)),
                b'n' => {
                    if self.b[self.i..].starts_with(b"null") {
                        self.i += 4;
                        Some(Value::Null)
                    } else {
                        None
                    }
                }
                b'[' => {
                    self.i += 1;
                    let mut items = Vec::new();
                    self.ws();
                    if self.b.get(self.i) == Some(&b']') {
                        self.i += 1;
                        return Some(Value::Arr(items));
                    }
                    loop {
                        items.push(self.value()?);
                        self.ws();
                        match self.b.get(self.i) {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                return Some(Value::Arr(items));
                            }
                            _ => return None,
                        }
                    }
                }
                c if c.is_ascii_digit() => {
                    let start = self.i;
                    while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
                        self.i += 1;
                    }
                    std::str::from_utf8(&self.b[start..self.i])
                        .ok()?
                        .parse()
                        .ok()
                        .map(Value::Num)
                }
                _ => None,
            }
        }

        fn string(&mut self) -> Option<String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.b.get(self.i)? {
                    b'"' => {
                        self.i += 1;
                        return Some(out);
                    }
                    b'\\' => {
                        self.i += 1;
                        match self.b.get(self.i)? {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'u' => {
                                let hex = self.b.get(self.i + 1..self.i + 5)?;
                                let code =
                                    u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                                out.push(char::from_u32(code)?);
                                self.i += 4;
                            }
                            _ => return None,
                        }
                        self.i += 1;
                    }
                    _ => {
                        // Copy the full UTF-8 sequence starting here.
                        let rest = std::str::from_utf8(&self.b[self.i..]).ok()?;
                        let c = rest.chars().next()?;
                        out.push(c);
                        self.i += c.len_utf8();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_core::{EvictPolicy, PrefetchPolicy};
    use uvm_workloads::LinearSweep;

    fn sweep() -> LinearSweep {
        LinearSweep {
            pages: 64,
            repeats: 1,
            thread_blocks: 2,
        }
    }

    fn sample_result() -> RunResult {
        RunResult {
            name: "x\"y\\z".into(),
            total_time: Duration::from_cycles(10),
            kernel_times: vec![Duration::from_cycles(10)],
            footprint: Bytes::mib(1),
            capacity: None,
            accesses: 100,
            far_faults: 1,
            pages_migrated: 2,
            pages_prefetched: 1,
            pages_evicted: 0,
            pages_thrashed: 0,
            prefetched_used: 1,
            prefetched_wasted: 0,
            clean_pages_written_back: 0,
            read_bandwidth_gbps: 3.25,
            write_bandwidth_gbps: 0.0,
            read_transfers_4k: 1,
            read_transfers: 2,
            read_bytes: Bytes::kib(8),
            write_bytes: Bytes::ZERO,
            transfer_retries: 7,
            transfer_giveups: 1,
            migration_retries: 3,
            migration_giveups: 0,
            emergency_evictions: 5,
            fault_jitter_cycles: 42,
            huge_pages: HugePageStats {
                coalesces: 4,
                splinters: 2,
                forced_splinters: 1,
                alloc_splits: 9,
                alloc_merges: 6,
                regions_reserved: 3,
                region_steals: 1,
            },
            traces: Vec::new(),
        }
    }

    #[test]
    fn jobs_zero_resolves_to_machine_parallelism_once() {
        // `--jobs 0` means auto-detect; the width is resolved in the
        // constructor and stays fixed for the executor's lifetime
        // rather than being re-queried per plan.
        let exec = Executor::new(0);
        let resolved = exec.jobs();
        assert!(resolved >= 1);
        exec.run_one(&sweep(), RunOptions::default());
        assert_eq!(exec.jobs(), resolved);
    }

    #[test]
    fn warmed_sweep_forks_one_shared_prefix() {
        use crate::run::Warmup;
        let w = LinearSweep {
            pages: 64,
            repeats: 3,
            thread_blocks: 2,
        };
        let submit_all = |exec: &Executor| {
            let mut plan = exec.plan();
            for p in PrefetchPolicy::ALL {
                plan.submit(
                    &w,
                    RunOptions::default()
                        .with_prefetch(p)
                        .with_warmup(Warmup::default()),
                );
            }
            plan.execute()
        };

        let forked_exec = Executor::new(2);
        let forked = submit_all(&forked_exec);
        assert_eq!(forked_exec.prefixes_simulated(), 1);
        assert_eq!(forked_exec.runs_executed(), PrefetchPolicy::ALL.len());

        let cold_exec = Executor::new(2).with_prefix_forking(false);
        let cold = submit_all(&cold_exec);
        assert_eq!(cold_exec.prefixes_simulated(), 0);
        for (f, c) in forked.iter().zip(&cold) {
            assert_eq!(format!("{f:?}"), format!("{c:?}"));
        }
    }

    #[test]
    fn singleton_warmed_run_needs_no_prefix() {
        use crate::run::Warmup;
        let exec = Executor::new(1);
        let w = sweep();
        exec.run_one(&w, RunOptions::default().with_warmup(Warmup::default()));
        assert_eq!(exec.prefixes_simulated(), 0);
        assert_eq!(exec.runs_executed(), 1);
    }

    #[test]
    fn failed_prefix_reports_every_group_member() {
        use crate::run::Warmup;

        #[derive(Clone, Debug)]
        struct Exploding;
        impl Workload for Exploding {
            fn name(&self) -> &'static str {
                "exploding"
            }
            fn build(
                &self,
                _malloc: &mut dyn FnMut(Bytes) -> uvm_types::VirtAddr,
            ) -> Vec<uvm_gpu::KernelSpec> {
                panic!("boom in the warm-up");
            }
        }

        let exec = Executor::new(2);
        let mut plan = exec.plan();
        for p in PrefetchPolicy::ALL {
            plan.submit(
                &Exploding,
                RunOptions::default()
                    .with_prefetch(p)
                    .with_warmup(Warmup::default()),
            );
        }
        let report = plan.try_execute();
        assert_eq!(report.failures.len(), PrefetchPolicy::ALL.len());
        let mut keys: Vec<_> = report.failures.iter().map(|f| f.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), PrefetchPolicy::ALL.len());
    }

    #[test]
    fn runkey_hex_round_trips() {
        let key = RunKey::new(&sweep(), &RunOptions::default());
        assert_eq!(RunKey::from_hex(&key.to_hex()), Some(key));
        assert_eq!(RunKey::from_hex("zzz"), None);
        assert_eq!(RunKey::from_hex(""), None);
        // Wrong width is rejected even when the digits parse.
        assert_eq!(RunKey::from_hex("abc123"), None);
    }

    #[test]
    fn checkpoint_and_audit_options_are_identity_inert() {
        // Checkpointing off must be a strict no-op: a checkpointed or
        // audited run names the same cache entry as a plain run.
        let w = sweep();
        let plain = RunKey::new(&w, &RunOptions::default());
        let durable = RunKey::new(
            &w,
            &RunOptions::default()
                .with_checkpoint(std::env::temp_dir().join("uvm-ckpt-inert"), 2)
                .with_audit(true),
        );
        assert_eq!(plain, durable);
    }

    #[test]
    fn hung_prefix_times_out_with_per_member_attribution() {
        use crate::run::Warmup;

        // A workload that hangs forever while building — the shared
        // warm-up prefix never completes, so the watchdog must abandon
        // it and attribute the timeout to every member of the group.
        #[derive(Clone, Debug)]
        struct Hung;
        impl Workload for Hung {
            fn name(&self) -> &'static str {
                "hung"
            }
            fn build(
                &self,
                _malloc: &mut dyn FnMut(Bytes) -> uvm_types::VirtAddr,
            ) -> Vec<uvm_gpu::KernelSpec> {
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        }

        let exec = Executor::new(2).with_run_timeout(std::time::Duration::from_millis(200));
        let mut plan = exec.plan();
        for p in PrefetchPolicy::ALL {
            plan.submit(
                &Hung,
                RunOptions::default()
                    .with_prefetch(p)
                    .with_warmup(Warmup::default()),
            );
        }
        let report = plan.try_execute();
        assert_eq!(report.failures.len(), PrefetchPolicy::ALL.len());
        let mut keys: Vec<_> = report.failures.iter().map(|f| f.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), PrefetchPolicy::ALL.len());
        for f in &report.failures {
            assert_eq!(f.name(), "hung");
            assert!(
                matches!(f, RunError::TimedOut { .. }),
                "expected a timeout, got: {f}"
            );
        }
    }

    #[test]
    fn unwritable_export_path_is_a_typed_failure_not_a_panic() {
        let dir = std::env::temp_dir().join(format!(
            "uvm-exec-badexport-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A regular file where the export's parent directory should
        // be: `create_dir_all` fails with NotADirectory even for root,
        // modelling a dead or misconfigured output disk.
        let obstacle = dir.join("not-a-dir");
        std::fs::write(&obstacle, b"occupied").unwrap();

        let exec = Executor::new(1);
        let w = sweep();
        let mut plan = exec.plan();
        plan.submit(
            &w,
            RunOptions::default().with_trace_export(obstacle.join("run.uvmt")),
        );
        let report = plan.try_execute();
        assert_eq!(report.failures.len(), 1);
        let f = &report.failures[0];
        assert!(
            matches!(f, RunError::Failed { .. }),
            "expected a typed I/O failure, got: {f}"
        );
        assert!(
            f.to_string().contains("trace-export"),
            "message should name the failing operation: {f}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_counts_recovered_and_resumed_members() {
        let dir = std::env::temp_dir().join(format!(
            "uvm-exec-resume-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spill = dir.join("cache");
        let journal_path = dir.join("sweep.journal");
        let w = sweep();
        let done_opts = RunOptions::default();
        let interrupted_opts = RunOptions::default().with_prefetch(PrefetchPolicy::None);

        // Session 1 completes one run (journal S+D, spill entry) and
        // is "killed" before the second: fake the kill by journaling
        // only the submit record, exactly what a SIGKILL mid-simulate
        // leaves behind.
        let first = Executor::new(1)
            .with_spill_dir(&spill)
            .with_journal(&journal_path);
        first.run_one(&w, done_opts.clone());
        Journal::new(&journal_path)
            .record_submitted(RunKey::new(&w, &interrupted_opts), w.name())
            .unwrap();

        // Session 2 resumes the whole sweep.
        let second = Executor::new(1)
            .with_spill_dir(&spill)
            .with_journal(&journal_path);
        let mut plan = second.plan();
        plan.submit(&w, done_opts.clone());
        plan.submit(&w, interrupted_opts.clone());
        let report = plan.resume();
        assert!(report.is_complete());
        assert_eq!(report.recovered, 1, "completed run served from spill");
        assert_eq!(report.resumed, 1, "interrupted run restarted");
        assert_eq!(second.runs_executed(), 1);

        // A later, non-resume execution of the same sweep is a plain
        // warm-cache run: no recovery bookkeeping.
        let third = Executor::new(1)
            .with_spill_dir(&spill)
            .with_journal(&journal_path);
        let mut plan = third.plan();
        plan.submit(&w, done_opts);
        plan.submit(&w, interrupted_opts);
        let report = plan.try_execute();
        assert!(report.is_complete());
        assert_eq!(report.recovered, 0);
        assert_eq!(report.resumed, 0);
        assert_eq!(third.runs_executed(), 0, "both runs now spill hits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_submissions_simulate_once() {
        let exec = Executor::new(2);
        let w = sweep();
        let mut plan = exec.plan();
        for _ in 0..5 {
            plan.submit(&w, RunOptions::default());
        }
        assert_eq!(plan.unique_runs(), 1);
        let results = plan.execute();
        assert_eq!(results.len(), 5);
        assert_eq!(exec.runs_executed(), 1);
        assert_eq!(exec.cache_hits(), 4);
        // A second plan reuses the memoized result.
        exec.run_one(&w, RunOptions::default());
        assert_eq!(exec.runs_executed(), 1);
        assert_eq!(exec.cache_hits(), 5);
    }

    #[test]
    fn results_keep_submission_order() {
        let exec = Executor::new(4);
        let w = sweep();
        let mut plan = exec.plan();
        plan.submit(
            &w,
            RunOptions::default().with_prefetch(PrefetchPolicy::None),
        );
        plan.submit(&w, RunOptions::default());
        let results = plan.execute();
        assert!(results[0].far_faults > results[1].far_faults);
    }

    #[test]
    fn spill_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "uvm-exec-spill-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let w = sweep();
        let opts = RunOptions::default().with_evict(EvictPolicy::SequentialLocal);

        let first = Executor::new(1).with_spill_dir(&dir);
        let a = first.run_one(&w, opts.clone());
        assert_eq!(first.runs_executed(), 1);

        // A fresh executor (fresh process stand-in) loads from disk.
        let second = Executor::new(1).with_spill_dir(&dir);
        let b = second.run_one(&w, opts);
        assert_eq!(second.runs_executed(), 0);
        assert_eq!(second.cache_hits(), 1);
        assert_eq!(second.quarantined_entries(), 0);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.far_faults, b.far_faults);
        assert_eq!(
            a.read_bandwidth_gbps.to_bits(),
            b.read_bandwidth_gbps.to_bits()
        );
        assert_eq!(a.kernel_times, b.kernel_times);
        assert_eq!(a.capacity, b.capacity);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn runkey_canonicalizes_alias_specs() {
        use uvm_core::PolicySpec;
        let w = sweep();
        let canonical =
            RunOptions::default().with_prefetch("markov".parse::<PolicySpec>().unwrap());
        let alias = RunOptions::default().with_prefetch("MKVp".parse::<PolicySpec>().unwrap());
        assert_eq!(RunKey::new(&w, &canonical), RunKey::new(&w, &alias));

        let canonical = RunOptions::default().with_evict("LRU-4KB".parse::<PolicySpec>().unwrap());
        let alias = RunOptions::default().with_evict("lru".parse::<PolicySpec>().unwrap());
        assert_eq!(RunKey::new(&w, &canonical), RunKey::new(&w, &alias));
    }

    #[test]
    fn runkey_folds_table_bytes_for_learned_aliases() {
        use uvm_core::PolicySpec;
        let dir = std::env::temp_dir().join(format!(
            "uvm-exec-alias-table-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let table = dir.join("t.tbl");
        std::fs::write(&table, b"v1").unwrap();

        let w = sweep();
        let spec = |name: &str| {
            format!("{name}:table={}", table.display())
                .parse::<PolicySpec>()
                .unwrap()
        };
        // Alias and canonical spellings name the same cache entry.
        let canonical = RunKey::new(&w, &RunOptions::default().with_prefetch(spec("learned")));
        let alias = RunKey::new(&w, &RunOptions::default().with_prefetch(spec("LRNp")));
        assert_eq!(canonical, alias);

        // Retraining the table re-keys the alias spelling too — a
        // stale spill entry can never serve the new table.
        std::fs::write(&table, b"v2-retrained").unwrap();
        let retrained = RunKey::new(&w, &RunOptions::default().with_prefetch(spec("LRNp")));
        assert_ne!(alias, retrained);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exporting_runs_always_resimulate_and_rewrite_the_trace() {
        let dir = std::env::temp_dir().join(format!(
            "uvm-exec-export-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = dir.join("run.uvmt");
        let w = sweep();
        let opts = RunOptions::default().with_trace_export(&trace);
        let exec = Executor::new(1).with_spill_dir(dir.join("cache"));

        exec.run_one(&w, opts.clone());
        assert!(trace.exists(), "first run writes the trace");
        // The exporting run never spills: its deliverable is the file.
        let key = RunKey::new(&w, &opts);
        assert!(!dir
            .join("cache")
            .join(format!("{}.json", key.to_hex()))
            .exists());

        // Deleting the file and re-running must regenerate it — a
        // memo/spill hit here would silently produce no trace.
        std::fs::remove_file(&trace).unwrap();
        exec.run_one(&w, opts.clone());
        assert_eq!(exec.runs_executed(), 2, "exporting runs are uncacheable");
        assert!(trace.exists(), "re-run rewrites the deleted trace");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_runs_are_not_spilled() {
        let dir = std::env::temp_dir().join(format!(
            "uvm-exec-trace-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let w = sweep();
        let opts = RunOptions::default().with_trace(true);
        let exec = Executor::new(1).with_spill_dir(&dir);
        let r = exec.run_one(&w, opts.clone());
        assert!(!r.traces.is_empty());
        let key = RunKey::new(&w, &opts);
        assert!(!dir.join(format!("{}.json", key.to_hex())).exists());
        // In-process memoization still applies (traces intact).
        let again = exec.run_one(&w, opts);
        assert_eq!(exec.runs_executed(), 1);
        assert!(!again.traces.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_entry_round_trips_and_rejects_corruption() {
        assert!(spill::decode_entry("not a spill entry").is_none());
        assert!(spill::decode_entry("uvmspill v3 crc=zzz\n{}").is_none());
        let good = spill::encode_entry(&sample_result());
        assert!(good.starts_with("uvmspill v3 crc="));
        let parsed = spill::decode_entry(&good).expect("round trip");
        assert_eq!(parsed.name, "x\"y\\z");
        assert_eq!(parsed.read_bandwidth_gbps, 3.25);
        assert_eq!(parsed.transfer_retries, 7);
        assert_eq!(parsed.emergency_evictions, 5);
        assert_eq!(parsed.fault_jitter_cycles, 42);

        // Version skew in the header.
        let skewed = good.replacen("uvmspill v3 ", "uvmspill v999 ", 1);
        assert!(spill::decode_entry(&skewed).is_none());

        // A single flipped character in the body fails the checksum.
        let flipped = good.replacen("\"far_faults\":1", "\"far_faults\":9", 1);
        assert_ne!(flipped, good);
        assert!(spill::decode_entry(&flipped).is_none());

        // Truncation (crash mid-write without the atomic rename)
        // fails the checksum too.
        let truncated = &good[..good.len() - 4];
        assert!(spill::decode_entry(truncated).is_none());
    }

    #[test]
    fn spill_checksum_covers_the_exact_body() {
        // The header commits to the body: moving the entry's bytes
        // around is detected even when both halves stay well-formed.
        let a = spill::encode_entry(&sample_result());
        let mut other = sample_result();
        other.far_faults = 99;
        let b = spill::encode_entry(&other);
        let (header_a, _) = a.split_once('\n').unwrap();
        let (_, body_b) = b.split_once('\n').unwrap();
        let franken = format!("{header_a}\n{body_b}");
        assert!(spill::decode_entry(&franken).is_none());
    }
}
