//! Single-run driver: one workload under one configuration, plus the
//! shared warm-up prefix machinery behind sweep forking.

use std::fmt;
use std::path::{Path, PathBuf};

use uvm_core::trace::{encode_trace, TraceKind, TraceMeta, TraceRecord};
use uvm_core::{
    read_checkpoint, write_checkpoint, CheckpointError, EvictPolicy, FaultPlan, Gmmu,
    HugePageStats, PolicyRegistry, PolicySpec, PrefetchPolicy, UvmConfig,
};
use uvm_gpu::{Engine, EngineSnapshot, GpuConfig, KernelSpec, TraceEvent};
use uvm_types::codec::{ByteReader, ByteWriter};
use uvm_types::{Bytes, Cycle, Duration, PageId};
use uvm_workloads::Workload;

use crate::exec::RunKey;

/// A shared warm-up phase preceding the measured (tail) launches.
///
/// With a warm-up in force, the first launches of a run simulate under
/// the warm-up policies; the driver then [swaps] to the run's own
/// `prefetch`/`evict` pair for the remaining launches. Runs differing
/// *only* in their tail policies therefore share a byte-identical
/// prefix, which the [`Executor`](crate::Executor) simulates once and
/// forks per point (DESIGN.md §8).
///
/// [swaps]: Gmmu::swap_policies
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Warmup {
    /// Launches simulated under the warm-up policies. Clamped so the
    /// final launch always runs under the measured policies: at most
    /// `total launches - 1` take part in the warm-up.
    pub kernels: usize,
    /// Prefetcher in force during the warm-up.
    pub prefetch: PrefetchPolicy,
    /// Eviction policy in force during the warm-up.
    pub evict: EvictPolicy,
}

impl Default for Warmup {
    /// One warm-up launch under the paper-default policies
    /// (TBNp + LRU-4KB).
    fn default() -> Self {
        Warmup {
            kernels: 1,
            prefetch: PrefetchPolicy::TreeBasedNeighborhood,
            evict: EvictPolicy::LruPage,
        }
    }
}

impl Warmup {
    /// The number of launches actually warmed for a workload with
    /// `total` launches (the final launch is never consumed).
    pub fn effective_kernels(&self, total: usize) -> usize {
        self.kernels.min(total.saturating_sub(1))
    }
}

/// Durable-checkpoint settings for a run (DESIGN.md §12).
///
/// With a spec installed, [`run_workload`] writes a `UVMC` checkpoint
/// of the full engine state into `dir` every `every_n_kernels`
/// completed launches (always at a kernel-boundary quiescent point),
/// and *resumes* from the latest valid checkpoint when one exists.
/// The file is named after the run's [`RunKey`](crate::RunKey), which
/// deliberately excludes the checkpoint settings themselves — a
/// checkpointed run and a plain run are the same simulation, and a
/// resumed run is byte-identical to an uninterrupted one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Directory the `<runkey>.uvmc` files live in.
    pub dir: PathBuf,
    /// Checkpoint every N completed kernel launches (must be ≥ 1).
    pub every_n_kernels: usize,
}

/// Options for one simulation run.
///
/// `memory_frac` expresses the paper's over-subscription percentage:
/// the working set is `memory_frac` × the device memory size. `None`
/// disables the budget entirely (the "no over-subscription" setup of
/// Sec. 4.1); `Some(1.10)` is the paper's usual "110 %".
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Hardware prefetcher spec (enum selectors convert via
    /// `Into<PolicySpec>`; parameterized forms like `markov:depth=2`
    /// are first-class).
    pub prefetch: PolicySpec,
    /// Eviction policy spec.
    pub evict: PolicySpec,
    /// Working set as a multiple of device memory (`None` = unlimited
    /// memory).
    pub memory_frac: Option<f64>,
    /// Disable the prefetcher permanently once memory first fills
    /// (the Fig. 6 / Fig. 9 rule).
    pub disable_prefetch_on_oversubscription: bool,
    /// Free-page-buffer fraction (0 = no memory-threshold
    /// pre-eviction).
    pub free_buffer_frac: f64,
    /// LRU-top reservation fraction (Sec. 5.3 / Fig. 14).
    pub reserve_frac: f64,
    /// GPU-side configuration.
    pub gpu: GpuConfig,
    /// Capture the page-access trace per kernel (Fig. 12).
    pub trace: bool,
    /// Override the number of concurrent fault-handling lanes
    /// (`None` = driver default; see DESIGN.md §4).
    pub fault_lanes: Option<usize>,
    /// Dirty-only write-back instead of the paper's bulk-unit
    /// write-back (the Sec. 5.1 design-choice ablation).
    pub writeback_dirty_only: bool,
    /// RNG seed for random policies.
    pub rng_seed: u64,
    /// Deterministic fault-injection plan ([`FaultPlan::none`] by
    /// default — nothing injected, no RNG drawn).
    pub fault_plan: FaultPlan,
    /// Shared warm-up prefix (`None` = every launch runs under
    /// `prefetch`/`evict`, the historical behavior).
    pub warmup: Option<Warmup>,
    /// Write the run's merged fault/access stream to this `UVMT` file
    /// (DESIGN.md §10). `None` (the default) records nothing and
    /// leaves the simulated run bit-identical.
    pub trace_export: Option<PathBuf>,
    /// Durable checkpoint/resume settings (DESIGN.md §12). `None`
    /// (the default) is a strict no-op: no files, no extra work, same
    /// [`RunKey`](crate::RunKey).
    pub checkpoint: Option<CheckpointSpec>,
    /// Run the [`Engine::audit`] invariant auditor at every kernel
    /// boundary. Schedule-inert (read-only cross-checks); also
    /// enabled by the `UVM_AUDIT=1` environment variable.
    pub audit: bool,
    /// Sharded-execution width for the engine (DESIGN.md §13):
    /// `Some(1)` = the serial loop, `Some(0)` = size to the host,
    /// `Some(n)` = `n` SM shards. `None` (the default) defers to the
    /// process-wide `UVM_ENGINE_THREADS` override, else serial.
    /// Byte-identical results at every width, so — like `checkpoint`
    /// and `audit` — this is not part of a run's identity.
    pub engine_threads: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            prefetch: PolicySpec::new("TBNp"),
            evict: PolicySpec::new("LRU-4KB"),
            memory_frac: None,
            disable_prefetch_on_oversubscription: false,
            free_buffer_frac: 0.0,
            reserve_frac: 0.0,
            gpu: GpuConfig::default(),
            trace: false,
            fault_lanes: None,
            writeback_dirty_only: false,
            rng_seed: 0x5eed,
            fault_plan: FaultPlan::none(),
            warmup: None,
            trace_export: None,
            checkpoint: None,
            audit: false,
            engine_threads: None,
        }
    }
}

impl RunOptions {
    /// Sets the prefetcher (builder style) — an enum selector, a
    /// [`PolicySpec`], or anything else converting into one.
    pub fn with_prefetch(mut self, p: impl Into<PolicySpec>) -> Self {
        self.prefetch = p.into();
        self
    }

    /// Sets the eviction policy — an enum selector, a [`PolicySpec`],
    /// or anything else converting into one.
    pub fn with_evict(mut self, e: impl Into<PolicySpec>) -> Self {
        self.evict = e.into();
        self
    }

    /// Sets the over-subscription fraction (1.10 = working set is
    /// 110 % of device memory).
    pub fn with_memory_frac(mut self, frac: f64) -> Self {
        self.memory_frac = Some(frac);
        self
    }

    /// Sets the Fig. 6 / Fig. 9 sticky prefetcher kill-switch.
    pub fn with_disable_prefetch_on_oversubscription(mut self, disable: bool) -> Self {
        self.disable_prefetch_on_oversubscription = disable;
        self
    }

    /// Sets the free-page-buffer fraction (memory-threshold
    /// pre-eviction).
    pub fn with_free_buffer_frac(mut self, frac: f64) -> Self {
        self.free_buffer_frac = frac;
        self
    }

    /// Sets the LRU-top reservation fraction (Sec. 5.3 / Fig. 14).
    pub fn with_reserve_frac(mut self, frac: f64) -> Self {
        self.reserve_frac = frac;
        self
    }

    /// Sets the GPU-side configuration.
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Enables per-kernel page-access trace capture (Fig. 12).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Overrides the number of concurrent fault-handling lanes.
    pub fn with_fault_lanes(mut self, lanes: usize) -> Self {
        self.fault_lanes = Some(lanes);
        self
    }

    /// Switches to dirty-only write-back (the Sec. 5.1 ablation).
    pub fn with_writeback_dirty_only(mut self, dirty_only: bool) -> Self {
        self.writeback_dirty_only = dirty_only;
        self
    }

    /// Sets the RNG seed for random policies.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Installs a shared warm-up prefix: the first launches run under
    /// the warm-up policies, the rest under this run's own pair.
    pub fn with_warmup(mut self, warmup: Warmup) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// Exports the run's merged fault/access stream to `path` in the
    /// `UVMT` format (DESIGN.md §10).
    pub fn with_trace_export(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_export = Some(path.into());
        self
    }

    /// Enables durable checkpointing: a `UVMC` snapshot of the full
    /// engine state lands in `dir` every `every_n_kernels` launches,
    /// and the run resumes from the latest valid one when re-executed.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>, every_n_kernels: usize) -> Self {
        self.checkpoint = Some(CheckpointSpec {
            dir: dir.into(),
            every_n_kernels,
        });
        self
    }

    /// Enables the GMMU/engine invariant auditor at every kernel
    /// boundary (also switched on globally by `UVM_AUDIT=1`).
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Sets the engine's sharded-execution width: `1` = the serial
    /// loop, `0` = size to the host's parallelism, `n` = partition the
    /// SMs across `n` shards with deterministic epoch barriers
    /// (DESIGN.md §13). Every width produces byte-identical results.
    pub fn with_engine_threads(mut self, n: usize) -> Self {
        self.engine_threads = Some(n);
        self
    }

    /// Checks every option for validity in one place: numeric ranges
    /// that were previously scattered asserts, plus policy-spec
    /// resolution through the global registry. Called by
    /// [`run_workload`]/[`simulate_prefix`] and `Plan::submit`, so bad
    /// options fail loudly at submission instead of deep in the
    /// engine.
    pub fn validate(&self) -> Result<(), OptionsError> {
        if let Some(frac) = self.memory_frac {
            if !frac.is_finite() || frac <= 0.0 {
                return Err(OptionsError::BadMemoryFrac(frac));
            }
        }
        for (field, value) in [
            ("free_buffer_frac", self.free_buffer_frac),
            ("reserve_frac", self.reserve_frac),
        ] {
            if !value.is_finite() || !(0.0..1.0).contains(&value) {
                return Err(OptionsError::BadFraction { field, value });
            }
        }
        if self.fault_lanes == Some(0) {
            return Err(OptionsError::ZeroFaultLanes);
        }
        if let Some(spec) = &self.checkpoint {
            if spec.every_n_kernels == 0 {
                return Err(OptionsError::ZeroCheckpointInterval);
            }
        }
        let registry = PolicyRegistry::global();
        registry
            .canonical_prefetch_spec(&self.prefetch)
            .map_err(|e| OptionsError::BadPolicy(e.to_string()))?;
        registry
            .canonical_evict_spec(&self.evict)
            .map_err(|e| OptionsError::BadPolicy(e.to_string()))?;
        Ok(())
    }

    /// [`validate`](Self::validate), panicking with the error's
    /// message — the shared entry-point check.
    pub(crate) fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid run options: {e}");
        }
    }
}

/// Why a [`RunOptions`] failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum OptionsError {
    /// `memory_frac` must be finite and positive.
    BadMemoryFrac(f64),
    /// A fraction field must lie in `0.0..1.0`.
    BadFraction {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `fault_lanes` must be at least 1 when overridden.
    ZeroFaultLanes,
    /// `checkpoint.every_n_kernels` must be at least 1.
    ZeroCheckpointInterval,
    /// A policy spec failed registry resolution (unknown name or
    /// parameter, bad value); carries the registry's message.
    BadPolicy(String),
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::BadMemoryFrac(v) => {
                write!(f, "memory_frac must be finite and positive, got {v}")
            }
            OptionsError::BadFraction { field, value } => {
                write!(f, "{field} must lie in 0.0..1.0, got {value}")
            }
            OptionsError::ZeroFaultLanes => write!(f, "fault_lanes must be at least 1"),
            OptionsError::ZeroCheckpointInterval => {
                write!(f, "checkpoint.every_n_kernels must be at least 1")
            }
            OptionsError::BadPolicy(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for OptionsError {}

/// Why a simulation run could not complete or deliver its artifacts.
///
/// Returned by [`try_run_workload`]/[`try_resume_run`]; the historical
/// [`run_workload`]/[`resume_run`] entry points panic with the same
/// message. The executor catches these as typed
/// [`RunError`](crate::RunError)s so one full disk or unreadable
/// checkpoint does not take a whole sweep down.
#[derive(Debug)]
pub enum SimError {
    /// A filesystem side-effect failed (trace export, directory
    /// creation): disk full, permissions, path shadowed by a file.
    Io {
        /// What the run was doing.
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Writing or reading a durable checkpoint failed in a way a cold
    /// start cannot paper over (I/O failure, version skew, or a
    /// checkpoint from a different run at this run's path).
    Checkpoint(CheckpointError),
    /// The invariant auditor found the engine state inconsistent at a
    /// kernel boundary — a simulator bug, surfaced instead of silently
    /// checkpointing garbage.
    Audit {
        /// Launch index (0-based) after which the audit ran.
        kernel: usize,
        /// Every violated invariant.
        error: uvm_core::AuditError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            SimError::Checkpoint(e) => write!(f, "{e}"),
            SimError::Audit { kernel, error } => {
                write!(f, "invariant audit failed after kernel {kernel}: {error}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Io { source, .. } => Some(source),
            SimError::Checkpoint(e) => Some(e),
            SimError::Audit { error, .. } => Some(error),
        }
    }
}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> Self {
        SimError::Checkpoint(e)
    }
}

impl From<uvm_types::codec::CodecError> for SimError {
    fn from(e: uvm_types::codec::CodecError) -> Self {
        SimError::Checkpoint(CheckpointError::Codec(e))
    }
}

/// Whether the invariant auditor is in force for `opts`: the explicit
/// flag, or the `UVM_AUDIT=1` environment switch (any value but `0`).
fn audit_enabled(opts: &RunOptions) -> bool {
    opts.audit || std::env::var("UVM_AUDIT").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The sharded-execution width in force for a run: the explicit
/// [`RunOptions::with_engine_threads`] value, else the process-wide
/// `UVM_ENGINE_THREADS` environment override (set by the bench
/// binaries' `--engine-threads` flag; non-numeric values fall back to
/// serial), else `1` — the serial loop. Like the checkpoint override,
/// the environment route exists because the width never changes
/// results or run identity.
fn effective_engine_threads(opts: &RunOptions) -> usize {
    if let Some(n) = opts.engine_threads {
        return n;
    }
    std::env::var("UVM_ENGINE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

/// The checkpoint spec in force for a run: the explicit
/// [`RunOptions::with_checkpoint`] spec, else the process-wide
/// `UVM_CHECKPOINT_DIR` / `UVM_CHECKPOINT_EVERY` environment override
/// (set by the bench binaries' `--checkpoint-dir`/`--checkpoint-every`
/// flags), else off. The environment route keeps every experiment
/// runner durable without threading options through each sweep — safe
/// because checkpointing never changes results or run identity.
fn effective_checkpoint(opts: &RunOptions) -> Option<CheckpointSpec> {
    if let Some(spec) = &opts.checkpoint {
        return Some(spec.clone());
    }
    let dir = std::env::var_os("UVM_CHECKPOINT_DIR")?;
    if dir.is_empty() {
        return None;
    }
    let every_n_kernels = std::env::var("UVM_CHECKPOINT_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    Some(CheckpointSpec {
        dir: PathBuf::from(dir),
        every_n_kernels,
    })
}

/// Measurements from one simulation run — the raw material of every
/// figure in the paper.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub name: String,
    /// Total execution time across all kernel launches.
    pub total_time: Duration,
    /// Per-launch execution times, in launch order.
    pub kernel_times: Vec<Duration>,
    /// Working-set footprint (requested bytes).
    pub footprint: Bytes,
    /// Device-memory budget in effect (`None` = unlimited).
    pub capacity: Option<Bytes>,
    /// Completed warp accesses — the denominator of
    /// [`faults_per_kilo_access`](Self::faults_per_kilo_access).
    pub accesses: u64,
    /// Distinct far-faults serviced (Fig. 5).
    pub far_faults: u64,
    /// Pages migrated host→device.
    pub pages_migrated: u64,
    /// Pages brought in by the prefetcher.
    pub pages_prefetched: u64,
    /// Pages evicted (Fig. 10).
    pub pages_evicted: u64,
    /// Pages re-migrated after eviction (Fig. 16).
    pub pages_thrashed: u64,
    /// Prefetched pages accessed while resident (useful prefetches).
    pub prefetched_used: u64,
    /// Prefetched pages evicted without ever being accessed.
    pub prefetched_wasted: u64,
    /// Evicted pages that were clean but written back anyway
    /// (the bulk write-back overhead of Sec. 5.1).
    pub clean_pages_written_back: u64,
    /// Average PCI-e read (host→device) bandwidth in GB/s (Fig. 4).
    pub read_bandwidth_gbps: f64,
    /// Average PCI-e write-back bandwidth in GB/s.
    pub write_bandwidth_gbps: f64,
    /// Count of 4 KB transfers on the read channel (Fig. 7).
    pub read_transfers_4k: u64,
    /// Total transfers on the read channel.
    pub read_transfers: u64,
    /// Total bytes moved host→device.
    pub read_bytes: Bytes,
    /// Total bytes moved device→host.
    pub write_bytes: Bytes,
    /// Injected PCI-e transfer replays (both link directions).
    pub transfer_retries: u64,
    /// Injected transfers whose replay budget ran out.
    pub transfer_giveups: u64,
    /// Injected transient migration failures replayed as faults.
    pub migration_retries: u64,
    /// Injected migrations whose replay budget ran out.
    pub migration_giveups: u64,
    /// Pages evicted by the injected oversubscription pressure mode.
    pub emergency_evictions: u64,
    /// Total injected far-fault latency jitter, in cycles.
    pub fault_jitter_cycles: u64,
    /// Huge-page coalesce/splinter and allocator split/merge counters.
    /// All-zero ([`HugePageStats::is_clean`]) for every legacy policy —
    /// only the Mosaic pair exercises the huge-page mechanism.
    pub huge_pages: HugePageStats,
    /// Per-kernel page-access traces, if requested.
    pub traces: Vec<Vec<TraceEvent>>,
}

impl RunResult {
    /// Total time in milliseconds of simulated time.
    pub fn total_ms(&self) -> f64 {
        self.total_time.as_secs() * 1e3
    }

    /// Speed-up of this run relative to `baseline` (>1 means faster).
    pub fn speedup_vs(&self, baseline: &RunResult) -> f64 {
        baseline.total_time.as_secs() / self.total_time.as_secs()
    }

    /// Distinct far-faults per thousand completed accesses — the
    /// huge-page ablation's figure of merit (0 when nothing ran).
    pub fn faults_per_kilo_access(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.far_faults as f64 * 1000.0 / self.accesses as f64
    }
}

/// Measures a workload's working-set footprint (requested bytes across
/// managed allocations) without running it. The device budget for the
/// over-subscription experiments is derived from this, mirroring the
/// paper's definition of the working set; the rounded-up tree tails
/// remain migratable on top of it.
pub fn measure_footprint(workload: &dyn Workload) -> Bytes {
    let mut gmmu = Gmmu::new(UvmConfig::default());
    let mut malloc = |size: Bytes| gmmu.malloc_managed(size);
    let _ = workload.build(&mut malloc);
    gmmu.allocations().total_requested()
}

/// Derives the device budget from the footprint and `memory_frac`
/// (range-checked upstream by [`RunOptions::validate`]).
fn derive_capacity(footprint: Bytes, memory_frac: Option<f64>) -> Option<Bytes> {
    memory_frac.map(|frac| Bytes::new((footprint.bytes() as f64 / frac).ceil() as u64))
}

/// Builds the driver configuration for `opts` with the given *initial*
/// policies (the warm-up pair when a warm-up is in force).
fn build_config(
    opts: &RunOptions,
    capacity: Option<Bytes>,
    prefetch: PolicySpec,
    evict: PolicySpec,
) -> UvmConfig {
    let mut cfg = UvmConfig::default()
        .with_prefetch(prefetch)
        .with_evict(evict)
        .with_disable_prefetch_on_oversubscription(opts.disable_prefetch_on_oversubscription)
        .with_rng_seed(opts.rng_seed)
        .with_fault_plan(opts.fault_plan);
    if let Some(capacity) = capacity {
        cfg = cfg.with_capacity(capacity);
    }
    if opts.free_buffer_frac > 0.0 {
        cfg = cfg.with_free_buffer_frac(opts.free_buffer_frac);
    }
    if opts.reserve_frac > 0.0 {
        cfg = cfg.with_reserve_frac(opts.reserve_frac);
    }
    if let Some(lanes) = opts.fault_lanes {
        cfg = cfg.with_fault_lanes(lanes);
    }
    if opts.writeback_dirty_only {
        cfg = cfg.with_writeback_dirty_only(true);
    }
    cfg
}

/// Builds the engine and compiled launch list for a run, with the
/// given initial policy pair installed.
fn build_engine(
    workload: &dyn Workload,
    opts: &RunOptions,
    capacity: Option<Bytes>,
    prefetch: PolicySpec,
    evict: PolicySpec,
) -> (Engine, Vec<KernelSpec>) {
    let mut gmmu = Gmmu::new(build_config(opts, capacity, prefetch, evict));
    if opts.trace_export.is_some() {
        gmmu.enable_fault_trace();
    }
    let kernels = {
        let mut malloc = |size: Bytes| gmmu.malloc_managed(size);
        workload.build(&mut malloc)
    };
    let mut engine = Engine::new(gmmu, opts.gpu.clone());
    engine.set_engine_threads(effective_engine_threads(opts));
    if opts.trace || opts.trace_export.is_some() {
        engine.enable_trace();
    }
    (engine, kernels)
}

/// Runs one launch, recording its time, its trace (if enabled), and
/// its export records (if an export stream is being collected).
fn run_launch(
    engine: &mut Engine,
    kernel: KernelSpec,
    trace: bool,
    export: Option<&mut Vec<TraceRecord>>,
    kernel_times: &mut Vec<Duration>,
    traces: &mut Vec<Vec<TraceEvent>>,
) {
    let time = engine.run_kernel(kernel);
    kernel_times.push(time);
    if !trace && export.is_none() {
        return;
    }
    let events = engine.take_trace();
    if let Some(records) = export {
        let faults = engine.gmmu_mut().take_fault_trace();
        append_export_records(records, &events, &faults, engine.now().index());
    }
    if trace {
        traces.push(events);
    }
}

/// Merges one launch's access events and fault stream into the export
/// record list, cycle-sorted (faults first on ties), closing with a
/// kernel-boundary marker.
fn append_export_records(
    records: &mut Vec<TraceRecord>,
    events: &[TraceEvent],
    faults: &[(uvm_types::Cycle, uvm_types::PageId)],
    end_cycle: u64,
) {
    records.reserve(events.len() + faults.len() + 1);
    let mut ev = events.iter().peekable();
    let mut fa = faults.iter().peekable();
    loop {
        let take_fault = match (fa.peek(), ev.peek()) {
            (Some(f), Some(e)) => f.0 <= e.cycle,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_fault {
            let &(cycle, page) = fa.next().expect("peeked");
            records.push(TraceRecord {
                kind: TraceKind::Fault,
                cycle: cycle.index(),
                page: page.index(),
            });
        } else {
            let e = ev.next().expect("peeked");
            records.push(TraceRecord {
                kind: if e.write {
                    TraceKind::AccessWrite
                } else {
                    TraceKind::AccessRead
                },
                cycle: e.cycle.index(),
                page: e.page.index(),
            });
        }
    }
    records.push(TraceRecord {
        kind: TraceKind::KernelEnd,
        cycle: end_cycle,
        page: 0,
    });
}

/// Writes the collected export stream to `opts.trace_export`. A run
/// that was asked to export must never silently produce nothing, so
/// every filesystem failure (disk full, read-only directory, a file
/// shadowing the parent path) surfaces as a typed [`SimError::Io`].
fn write_export(opts: &RunOptions, name: &str, records: &[TraceRecord]) -> Result<(), SimError> {
    let Some(path) = &opts.trace_export else {
        return Ok(());
    };
    let meta = TraceMeta {
        workload: name.to_owned(),
        prefetch: opts.prefetch.to_string(),
        evict: opts.evict.to_string(),
        seed: opts.rng_seed,
    };
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|source| SimError::Io {
            op: "creating trace-export dir",
            path: parent.to_path_buf(),
            source,
        })?;
    }
    std::fs::write(path, encode_trace(&meta, records)).map_err(|source| SimError::Io {
        op: "writing trace export",
        path: path.clone(),
        source,
    })
}

/// Assembles the [`RunResult`] from a finished engine.
fn collect_result(
    engine: &Engine,
    name: &str,
    footprint: Bytes,
    capacity: Option<Bytes>,
    kernel_times: Vec<Duration>,
    traces: Vec<Vec<TraceEvent>>,
) -> RunResult {
    let gmmu = engine.gmmu();
    let stats = gmmu.stats();
    let read = gmmu.read_stats();
    let write = gmmu.write_stats();
    RunResult {
        name: name.to_owned(),
        total_time: kernel_times.iter().fold(Duration::ZERO, |acc, &t| acc + t),
        kernel_times,
        footprint,
        capacity,
        accesses: stats.accesses,
        far_faults: stats.far_faults,
        pages_migrated: stats.pages_migrated,
        pages_prefetched: stats.pages_prefetched,
        pages_evicted: stats.pages_evicted,
        pages_thrashed: stats.pages_thrashed,
        prefetched_used: stats.prefetched_used,
        prefetched_wasted: stats.prefetched_wasted,
        clean_pages_written_back: stats.clean_pages_written_back,
        read_bandwidth_gbps: read.average_bandwidth_gbps(),
        write_bandwidth_gbps: write.average_bandwidth_gbps(),
        read_transfers_4k: read.histogram.count_4kib(),
        read_transfers: read.transfers(),
        read_bytes: read.bytes,
        write_bytes: write.bytes,
        transfer_retries: stats.fault_injection.transfer_retries,
        transfer_giveups: stats.fault_injection.transfer_giveups,
        migration_retries: stats.fault_injection.migration_retries,
        migration_giveups: stats.fault_injection.migration_giveups,
        emergency_evictions: stats.fault_injection.emergency_evictions,
        fault_jitter_cycles: stats.fault_injection.jitter_cycles,
        huge_pages: stats.huge_pages.clone(),
        traces,
    }
}

/// The on-disk location of a run's checkpoint: its [`RunKey`] (which
/// excludes the checkpoint settings themselves) under the spec's dir.
fn checkpoint_path(spec: &CheckpointSpec, workload: &dyn Workload, opts: &RunOptions) -> PathBuf {
    spec.dir
        .join(format!("{}.uvmc", RunKey::new(workload, opts).to_hex()))
}

/// Serializes everything a mid-run kernel boundary needs to resume:
/// run identity, cursor, accumulated measurements, pending export
/// records, and the full engine image as an opaque sub-buffer.
fn encode_run_state(
    workload: &dyn Workload,
    total: usize,
    next_kernel: usize,
    kernel_times: &[Duration],
    traces: &[Vec<TraceEvent>],
    export: Option<&Vec<TraceRecord>>,
    engine: &Engine,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(workload.name());
    w.put_str(&workload.signature());
    w.put_usize(total);
    w.put_usize(next_kernel);
    w.put_usize(kernel_times.len());
    for t in kernel_times {
        w.put_u64(t.cycles());
    }
    w.put_usize(traces.len());
    for trace in traces {
        w.put_usize(trace.len());
        for e in trace {
            w.put_u64(e.cycle.index());
            w.put_u64(e.page.index());
            w.put_usize(e.warp);
            w.put_bool(e.write);
        }
    }
    match export {
        None => w.put_bool(false),
        Some(records) => {
            w.put_bool(true);
            w.put_usize(records.len());
            for r in records {
                w.put_u8(r.kind.tag());
                w.put_u64(r.cycle);
                w.put_u64(r.page);
            }
        }
    }
    let mut ew = ByteWriter::new();
    engine.save_state(&mut ew);
    w.put_bytes(&ew.into_bytes());
    w.into_bytes()
}

/// Tries to resume from the checkpoint at `path`, restoring into the
/// freshly built `engine` and the run's accumulators.
///
/// Returns `Ok(None)` for a cold start — no checkpoint on disk, or a
/// corrupt one (already quarantined as `.corrupt` by the container
/// reader). Version skew, I/O failures, and checkpoints belonging to
/// a different run are hard errors: silently cold-starting over them
/// would hide real damage.
fn load_run_state(
    path: &Path,
    workload: &dyn Workload,
    total: usize,
    engine: &mut Engine,
    kernel_times: &mut Vec<Duration>,
    traces: &mut Vec<Vec<TraceEvent>>,
    export: Option<&mut Vec<TraceRecord>>,
) -> Result<Option<usize>, SimError> {
    let payload = match read_checkpoint(path) {
        Ok(p) => p,
        Err(CheckpointError::Io { source, .. })
            if source.kind() == std::io::ErrorKind::NotFound =>
        {
            return Ok(None)
        }
        Err(e) if e.is_corruption() => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut r = ByteReader::new(&payload);
    let name = r.get_str()?.to_owned();
    let signature = r.get_str()?.to_owned();
    if name != workload.name() || signature != workload.signature() {
        return Err(CheckpointError::Incompatible(format!(
            "checkpoint is for workload '{name}' ({signature}), \
             not '{}' ({})",
            workload.name(),
            workload.signature()
        ))
        .into());
    }
    let stored_total = r.get_usize()?;
    if stored_total != total {
        return Err(CheckpointError::Incompatible(format!(
            "checkpoint covers a {stored_total}-launch run, this run has {total} launches"
        ))
        .into());
    }
    let next = r.get_usize()?;
    let times = r.get_usize()?;
    if next > total || times != next {
        return Err(CheckpointError::Incompatible(format!(
            "checkpoint cursor at kernel {next} with {times} recorded times"
        ))
        .into());
    }
    for _ in 0..times {
        kernel_times.push(Duration::from_cycles(r.get_u64()?));
    }
    let trace_count = r.get_usize()?;
    for _ in 0..trace_count {
        let events = r.get_usize()?;
        let mut trace = Vec::with_capacity(events.min(1 << 20));
        for _ in 0..events {
            trace.push(TraceEvent {
                cycle: Cycle::new(r.get_u64()?),
                page: PageId::new(r.get_u64()?),
                warp: r.get_usize()?,
                write: r.get_bool()?,
            });
        }
        traces.push(trace);
    }
    let had_export = r.get_bool()?;
    if had_export != export.is_some() {
        return Err(CheckpointError::Incompatible(
            "checkpoint and run disagree about trace export".into(),
        )
        .into());
    }
    if let Some(records) = export {
        let n = r.get_usize()?;
        for _ in 0..n {
            let tag = r.get_u8()?;
            let kind = TraceKind::from_tag(tag).ok_or(CheckpointError::Codec(
                uvm_types::codec::CodecError::BadTag {
                    what: "export record kind",
                    value: u64::from(tag),
                },
            ))?;
            records.push(TraceRecord {
                kind,
                cycle: r.get_u64()?,
                page: r.get_u64()?,
            });
        }
    }
    let image = r.get_bytes()?;
    let mut er = ByteReader::new(image);
    engine.load_state(&mut er)?;
    er.finish()?;
    r.finish()?;
    Ok(Some(next))
}

/// Runs `workload` under `opts` and returns the measurements.
///
/// The device-memory budget is derived from the workload's footprint
/// and `opts.memory_frac`, mirroring the paper's method of scaling the
/// memory-size parameter rather than the working set (Sec. 7.3).
///
/// With `opts.warmup` set, the first launches run under the warm-up
/// policies and the driver swaps to `opts.prefetch`/`opts.evict` for
/// the rest. The reported times and counters still cover *all*
/// launches; this in-place path is byte-identical to
/// [`simulate_prefix`] + [`resume_run`], which the fork-equivalence
/// suite asserts.
///
/// # Panics
///
/// Panics on the failures [`try_run_workload`] reports as typed
/// [`SimError`]s (export I/O, checkpoint damage, audit violations).
pub fn run_workload(workload: &dyn Workload, opts: RunOptions) -> RunResult {
    match try_run_workload(workload, opts) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// [`run_workload`] with every durability failure surfaced as a typed
/// [`SimError`] instead of a panic.
///
/// With `opts.checkpoint` set, the run resumes from the latest valid
/// `UVMC` checkpoint under the spec's directory (byte-identical to an
/// uninterrupted run) and writes a fresh checkpoint every
/// `every_n_kernels` completed launches. With auditing enabled
/// ([`RunOptions::with_audit`] or `UVM_AUDIT=1`), the engine's
/// invariant auditor runs at every kernel boundary — in particular at
/// every checkpoint boundary — and an inconsistency fails the run
/// rather than persisting damaged state.
pub fn try_run_workload(workload: &dyn Workload, opts: RunOptions) -> Result<RunResult, SimError> {
    opts.assert_valid();
    let footprint = measure_footprint(workload);
    let capacity = derive_capacity(footprint, opts.memory_frac);
    let warm = opts.warmup;
    let (initial_prefetch, initial_evict) = match warm {
        Some(w) => (w.prefetch.into(), w.evict.into()),
        None => (opts.prefetch.clone(), opts.evict.clone()),
    };

    let (mut engine, kernels) =
        build_engine(workload, &opts, capacity, initial_prefetch, initial_evict);
    let total = kernels.len();
    let warm_launches = warm.map_or(0, |w| w.effective_kernels(total));
    let audit = audit_enabled(&opts);

    let mut kernel_times = Vec::with_capacity(total);
    let mut traces = Vec::new();
    let mut export = opts.trace_export.as_ref().map(|_| Vec::new());

    let ckpt = effective_checkpoint(&opts).map(|spec| {
        (
            spec.every_n_kernels,
            checkpoint_path(&spec, workload, &opts),
        )
    });
    let mut start = 0usize;
    if let Some((_, path)) = &ckpt {
        if let Some(resumed) = load_run_state(
            path,
            workload,
            total,
            &mut engine,
            &mut kernel_times,
            &mut traces,
            export.as_mut(),
        )? {
            start = resumed;
            if audit {
                engine.audit().map_err(|error| SimError::Audit {
                    kernel: resumed.saturating_sub(1),
                    error,
                })?;
            }
        }
    }

    for (i, kernel) in kernels.into_iter().enumerate().skip(start) {
        if warm.is_some() && i == warm_launches {
            engine
                .gmmu_mut()
                .swap_policies(opts.prefetch.clone(), opts.evict.clone());
        }
        run_launch(
            &mut engine,
            kernel,
            opts.trace,
            export.as_mut(),
            &mut kernel_times,
            &mut traces,
        );
        if audit {
            engine
                .audit()
                .map_err(|error| SimError::Audit { kernel: i, error })?;
        }
        if let Some((every, path)) = &ckpt {
            if (i + 1) % every == 0 && i + 1 < total {
                let payload = encode_run_state(
                    workload,
                    total,
                    i + 1,
                    &kernel_times,
                    &traces,
                    export.as_ref(),
                    &engine,
                );
                write_checkpoint(path, &payload)?;
            }
        }
    }
    if let Some(records) = &export {
        write_export(&opts, workload.name(), records)?;
    }

    Ok(collect_result(
        &engine,
        workload.name(),
        footprint,
        capacity,
        kernel_times,
        traces,
    ))
}

/// A simulated warm-up prefix, ready to be forked into per-policy
/// tails.
///
/// Produced by [`simulate_prefix`]; consumed (any number of times) by
/// [`resume_run`]. The snapshot owns a deep copy of the engine, so the
/// prefix is immutable and can be shared across worker threads.
#[derive(Clone, Debug)]
pub struct SweepPrefix {
    snapshot: EngineSnapshot,
    tail_kernels: Vec<KernelSpec>,
    warm_times: Vec<Duration>,
    warm_traces: Vec<Vec<TraceEvent>>,
    /// Export records captured during the warm launches (empty when
    /// the prefix options carried no `trace_export`).
    warm_export: Vec<TraceRecord>,
    name: String,
    footprint: Bytes,
    capacity: Option<Bytes>,
}

impl SweepPrefix {
    /// Warm-up launches contained in the prefix.
    pub fn warm_launches(&self) -> usize {
        self.warm_times.len()
    }

    /// Launches remaining after the prefix.
    pub fn tail_launches(&self) -> usize {
        self.tail_kernels.len()
    }
}

/// Simulates the shared warm-up prefix of a sweep once.
///
/// `opts` must carry a warm-up; only its *shared* fields matter — the
/// tail `prefetch`/`evict` pair is ignored here and supplied per point
/// by [`resume_run`].
///
/// # Panics
///
/// Panics if `opts.warmup` is `None`.
pub fn simulate_prefix(workload: &dyn Workload, opts: &RunOptions) -> SweepPrefix {
    opts.assert_valid();
    let warm = opts
        .warmup
        .expect("simulate_prefix requires RunOptions::warmup");
    let footprint = measure_footprint(workload);
    let capacity = derive_capacity(footprint, opts.memory_frac);

    let (mut engine, kernels) = build_engine(
        workload,
        opts,
        capacity,
        warm.prefetch.into(),
        warm.evict.into(),
    );
    let warm_launches = warm.effective_kernels(kernels.len());

    let audit = audit_enabled(opts);
    let mut warm_times = Vec::with_capacity(warm_launches);
    let mut warm_traces = Vec::new();
    let mut warm_export = opts.trace_export.as_ref().map(|_| Vec::new());
    let mut kernels = kernels.into_iter();
    for kernel in kernels.by_ref().take(warm_launches) {
        run_launch(
            &mut engine,
            kernel,
            opts.trace,
            warm_export.as_mut(),
            &mut warm_times,
            &mut warm_traces,
        );
        if audit {
            if let Err(e) = engine.audit() {
                panic!(
                    "invariant audit failed in warm-up kernel {}: {e}",
                    warm_times.len() - 1
                );
            }
        }
    }

    SweepPrefix {
        snapshot: engine.snapshot(),
        tail_kernels: kernels.collect(),
        warm_times,
        warm_traces,
        warm_export: warm_export.unwrap_or_default(),
        name: workload.name().to_owned(),
        footprint,
        capacity,
    }
}

/// Resumes a run from a shared prefix under `opts`' own tail policies.
///
/// The engine is forked from the snapshot, the policies swapped to
/// `opts.prefetch`/`opts.evict`, and the remaining launches simulated.
/// The result covers the whole run (warm-up included) and is
/// byte-identical to a cold [`run_workload`] with the same options.
///
/// # Panics
///
/// Panics on the failures [`try_resume_run`] reports as typed
/// [`SimError`]s (trace-export I/O).
pub fn resume_run(prefix: &SweepPrefix, opts: &RunOptions) -> RunResult {
    match try_resume_run(prefix, opts) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// [`resume_run`] with export failures surfaced as typed
/// [`SimError`]s instead of panics.
pub fn try_resume_run(prefix: &SweepPrefix, opts: &RunOptions) -> Result<RunResult, SimError> {
    opts.assert_valid();
    debug_assert!(
        opts.warmup.is_some(),
        "resume_run options should carry the sweep's warm-up"
    );
    let mut engine = prefix.snapshot.fork();
    // The fork inherits the prefix engine's width; the tail honors
    // *these* options (result-inert either way).
    engine.set_engine_threads(effective_engine_threads(opts));
    engine
        .gmmu_mut()
        .swap_policies(opts.prefetch.clone(), opts.evict.clone());

    let mut export = opts.trace_export.as_ref().map(|_| {
        // A prefix built without export captured nothing for the warm
        // launches; turn capture on for the tail either way.
        engine.enable_trace();
        engine.gmmu_mut().enable_fault_trace();
        prefix.warm_export.clone()
    });

    let audit = audit_enabled(opts);
    let mut kernel_times = prefix.warm_times.clone();
    let mut traces = prefix.warm_traces.clone();
    for kernel in prefix.tail_kernels.iter().cloned() {
        run_launch(
            &mut engine,
            kernel,
            opts.trace,
            export.as_mut(),
            &mut kernel_times,
            &mut traces,
        );
        if audit {
            let kernel = kernel_times.len() - 1;
            engine
                .audit()
                .map_err(|error| SimError::Audit { kernel, error })?;
        }
    }
    if let Some(records) = &export {
        write_export(opts, &prefix.name, records)?;
    }

    Ok(collect_result(
        &engine,
        &prefix.name,
        prefix.footprint,
        prefix.capacity,
        kernel_times,
        traces,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_workloads::{LinearSweep, StridedTouch};

    fn sweep() -> LinearSweep {
        LinearSweep {
            pages: 256,
            repeats: 2,
            thread_blocks: 8,
        }
    }

    #[test]
    fn footprint_measured_without_running() {
        let fp = measure_footprint(&sweep());
        assert_eq!(fp, Bytes::mib(1));
    }

    #[test]
    fn unlimited_memory_never_evicts() {
        let r = run_workload(&sweep(), RunOptions::default());
        assert_eq!(r.capacity, None);
        assert_eq!(r.pages_evicted, 0);
        assert_eq!(r.pages_migrated, 256);
        assert_eq!(r.kernel_times.len(), 2);
        assert!(r.total_ms() > 0.0);
    }

    #[test]
    fn oversubscription_budget_derived_from_footprint() {
        let r = run_workload(
            &sweep(),
            RunOptions::default()
                .with_memory_frac(1.10)
                .with_prefetch(PrefetchPolicy::None),
        );
        // 1 MiB working set at 110% => ~0.909 MiB budget.
        let cap = r.capacity.unwrap();
        assert!(cap < Bytes::mib(1));
        assert!(cap > Bytes::kib(900));
        assert!(r.pages_evicted > 0);
    }

    #[test]
    fn prefetcher_reduces_far_faults() {
        let none = run_workload(
            &sweep(),
            RunOptions::default().with_prefetch(PrefetchPolicy::None),
        );
        let tbn = run_workload(
            &sweep(),
            RunOptions::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood),
        );
        assert!(tbn.far_faults < none.far_faults / 4);
        assert!(tbn.total_time < none.total_time);
        assert!(tbn.speedup_vs(&none) > 1.0);
        assert!(none.speedup_vs(&tbn) < 1.0);
    }

    #[test]
    fn trace_capture_per_kernel() {
        let r = run_workload(
            &StridedTouch::default(),
            RunOptions {
                trace: true,
                ..RunOptions::default()
            },
        );
        assert_eq!(r.traces.len(), 1);
        assert_eq!(r.traces[0].len(), 4);
    }

    #[test]
    fn warmup_with_identical_policies_matches_cold_run() {
        // Unlimited memory, warm-up pair == tail pair: the swap
        // reinstalls equivalent fresh policies, so nothing diverges.
        let cold = run_workload(&sweep(), RunOptions::default());
        let warm = run_workload(
            &sweep(),
            RunOptions::default().with_warmup(Warmup::default()),
        );
        assert_eq!(cold.total_time, warm.total_time);
        assert_eq!(cold.far_faults, warm.far_faults);
        assert_eq!(cold.kernel_times, warm.kernel_times);
    }

    #[test]
    fn warmup_clamps_to_leave_one_measured_launch() {
        let w = Warmup {
            kernels: 10,
            ..Warmup::default()
        };
        assert_eq!(w.effective_kernels(2), 1);
        assert_eq!(w.effective_kernels(1), 0);
        assert_eq!(w.effective_kernels(0), 0);
        let r = run_workload(&sweep(), RunOptions::default().with_warmup(w));
        assert_eq!(r.kernel_times.len(), 2);
    }

    #[test]
    fn prefix_resume_matches_in_place_warmed_run() {
        let opts = RunOptions::default()
            .with_memory_frac(1.10)
            .with_prefetch(PrefetchPolicy::None)
            .with_warmup(Warmup::default());
        let cold = run_workload(&sweep(), opts.clone());
        let prefix = simulate_prefix(&sweep(), &opts);
        assert_eq!(prefix.warm_launches(), 1);
        assert_eq!(prefix.tail_launches(), 1);
        let forked = resume_run(&prefix, &opts);
        assert_eq!(format!("{cold:?}"), format!("{forked:?}"));
    }

    #[test]
    fn bandwidth_reflects_transfer_sizes() {
        let none = run_workload(
            &sweep(),
            RunOptions::default().with_prefetch(PrefetchPolicy::None),
        );
        // All 4 KB transfers: average bandwidth equals Table 1's 4 KB row.
        assert!((none.read_bandwidth_gbps - 3.2219).abs() < 0.01);
        assert_eq!(none.read_transfers_4k, none.read_transfers);
        let tbn = run_workload(&sweep(), RunOptions::default());
        assert!(tbn.read_bandwidth_gbps > 6.0);
    }
}
