//! Experiment harness for the UVM-interplay reproduction.
//!
//! This crate glues the stack together: it instantiates a
//! [`uvm_core::Gmmu`] and a [`uvm_gpu::Engine`], builds a
//! [`uvm_workloads::Workload`] against them, runs every kernel launch,
//! and collects a [`RunResult`] with the measurements the paper's
//! figures report (kernel time, far-faults, PCI-e bandwidth, transfer
//! histograms, evictions, thrashing).
//!
//! The [`experiments`] module contains one runner per table/figure of
//! the paper's evaluation; runners submit their sweeps to an
//! [`Executor`], which deduplicates identical runs across figures,
//! executes the unique ones on a worker pool, and memoizes (and
//! optionally spills to `results/cache/`) every result. The
//! `uvm-bench` crate wraps the runners as binaries and benches.
//!
//! # Examples
//!
//! ```
//! use uvm_sim::{run_workload, RunOptions};
//! use uvm_workloads::LinearSweep;
//!
//! let result = run_workload(
//!     &LinearSweep { pages: 64, repeats: 2, thread_blocks: 4 },
//!     RunOptions::default(),
//! );
//! assert_eq!(result.kernel_times.len(), 2);
//! assert!(result.far_faults > 0);
//! ```

mod error;
mod exec;
mod journal;
mod pattern;
mod run;
mod table;

pub mod experiments;

pub use error::{ExecutionReport, RunError};
pub use exec::{Executor, Plan, RunKey};
pub use journal::{Journal, JournalReplay};
pub use pattern::{PatternClass, PatternSummary};
pub use run::{
    measure_footprint, resume_run, run_workload, simulate_prefix, try_resume_run, try_run_workload,
    CheckpointSpec, OptionsError, RunOptions, RunResult, SimError, SweepPrefix, Warmup,
};
pub use table::Table;
