//! One experiment runner per table/figure of the paper's evaluation.
//!
//! Every function returns [`Table`]s whose rows/series mirror what the
//! paper plots; the `uvm-bench` crate wraps them as binaries (printing
//! text + CSV) and benches. Each runner accepts a [`Scale`]:
//! [`Scale::Paper`] uses the paper-scale workloads (4–38.5 MB
//! footprints), [`Scale::Smoke`] uses shrunken versions for fast CI.
//!
//! Runners do not simulate directly: they submit their full sweep to
//! an [`Executor`] plan and assemble tables from the returned results.
//! The executor dedupes identical `(workload, options)` runs across
//! figures (Figs. 3/4/5 literally share one sweep; a session running
//! all figures shares many more), executes unique runs on a worker
//! pool, and memoizes results — so `all_experiments` costs far fewer
//! simulations than the per-figure run counts suggest.

use uvm_core::{AllocTree, EvictPolicy, FaultPlan, PolicySpec, PrefetchPolicy};
use uvm_types::{BasicBlockId, Bytes, TreeExtent};
use uvm_workloads::{
    standard_suite, Backprop, Bfs, Gaussian, Hotspot, NeedlemanWunsch, Pathfinder, Srad, Workload,
};

use crate::exec::Executor;
use crate::run::{RunOptions, Warmup};
use crate::table::Table;

/// Experiment size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale workloads (Sec. 6.2 footprints).
    Paper,
    /// Shrunken workloads for fast tests.
    Smoke,
}

/// The benchmark suite at the requested scale.
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Paper => standard_suite(),
        // Smoke footprints stay >= 4 MiB so every benchmark spans
        // multiple 2 MB large pages (the 2 MB-eviction experiments
        // degenerate on a single large page).
        Scale::Smoke => vec![
            Box::new(Backprop {
                input_pages: 128,
                weights_in_pages: 512,
                weights_out_pages: 512,
                thread_blocks: 16,
            }),
            Box::new(Bfs {
                node_pages: 256,
                edge_pages: 512,
                mask_pages: 64,
                cost_pages: 256,
                levels: 3,
                thread_blocks: 8,
                expansions_per_block: 32,
                seed: 0xbf5,
            }),
            // Gaussian keeps three 2 MB large pages: with only two, a
            // hot pivot plus static 2 MB eviction evicts half the
            // active set on every fault.
            Box::new(Gaussian {
                rows: 1536,
                rows_per_step: 128,
                rows_per_block: 16,
            }),
            Box::new(Hotspot {
                rows: 768,
                iterations: 4,
                rows_per_block: 16,
            }),
            Box::new(NeedlemanWunsch {
                rows: 512,
                tile: 16,
            }),
            Box::new(Pathfinder {
                rows: 6,
                row_pages: 128,
                thread_blocks: 8,
            }),
            // srad arrays stay power-of-two sized (512 KB = one full
            // 8-leaf tree each): a partially-used remainder tree makes
            // TBNe cascade on the never-allocated tail. Note the
            // smoke-scale srad remains adversarial for TBNe (tiny
            // trees, whole-working-set cyclic sweeps); see
            // EXPERIMENTS.md for the deviation discussion.
            Box::new(Srad {
                rows: 128,
                iterations: 2,
                rows_per_block: 16,
            }),
        ],
    }
}

/// Formats a float with three significant decimals.
fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// Table 1: PCI-e read bandwidth as a function of transfer size,
/// as produced by the calibrated interconnect model.
pub fn table1() -> Table {
    use uvm_interconnect::PcieModel;
    let model = PcieModel::pascal_x16();
    let mut t = Table::new(
        "Table 1: PCI-e read bandwidth vs transfer size",
        &["transfer_size_kb", "bandwidth_gbps"],
    );
    for kb in [4u64, 16, 64, 256, 1024] {
        t.row_owned(vec![
            kb.to_string(),
            fmt(model.bandwidth_gbps(Bytes::kib(kb))),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figures 3-5: prefetchers, no over-subscription
// ---------------------------------------------------------------------

/// Results of the prefetcher sweep (Figs. 3, 4, 5 share the runs).
#[derive(Clone, Debug)]
pub struct PrefetcherSweep {
    /// Fig. 3: kernel execution time (ms) per benchmark × prefetcher.
    pub time: Table,
    /// Fig. 4: average PCI-e read bandwidth (GB/s).
    pub bandwidth: Table,
    /// Fig. 5: total far-faults.
    pub faults: Table,
}

/// Runs every benchmark under each prefetcher with no memory budget
/// (Sec. 4.1's setup) and reports Figs. 3-5. The three figures are
/// different projections of the *same* runs, so the executor simulates
/// each benchmark × prefetcher cell exactly once.
pub fn prefetcher_sweep(exec: &Executor, scale: Scale) -> PrefetcherSweep {
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for p in PrefetchPolicy::ALL {
            plan.submit(w.as_ref(), RunOptions::default().with_prefetch(p));
        }
    }
    let mut results = plan.execute().into_iter();

    let headers = ["benchmark", "none", "Rp", "SLp", "TBNp"];
    let mut time = Table::new(
        "Fig 3: kernel execution time (ms), no over-subscription",
        &headers,
    );
    let mut bandwidth = Table::new("Fig 4: average PCI-e read bandwidth (GB/s)", &headers);
    let mut faults = Table::new("Fig 5: total far-faults", &headers);
    for w in &suite {
        let mut t_row = vec![w.name().to_string()];
        let mut b_row = vec![w.name().to_string()];
        let mut f_row = vec![w.name().to_string()];
        for _ in PrefetchPolicy::ALL {
            let r = results.next().expect("plan covers every cell");
            t_row.push(fmt(r.total_ms()));
            b_row.push(fmt(r.read_bandwidth_gbps));
            f_row.push(r.far_faults.to_string());
        }
        time.row_owned(t_row);
        bandwidth.row_owned(b_row);
        faults.row_owned(f_row);
    }
    PrefetcherSweep {
        time,
        bandwidth,
        faults,
    }
}

/// Results of the warmed policy-grid sweep: the figs. 3/4/5 measures
/// (kernel time, read bandwidth, far-faults) for every prefetcher ×
/// evictor pair, taken in steady state after a shared warm-up.
#[derive(Clone, Debug)]
pub struct WarmedGridSweep {
    /// Kernel execution time (ms) per evictor × prefetcher.
    pub time: Table,
    /// Average PCI-e read bandwidth (GB/s).
    pub bandwidth: Table,
    /// Total far-faults.
    pub faults: Table,
}

/// Steady-state variant of the figs. 3-5 measurement over the full
/// prefetcher × evictor grid at 110 % over-subscription: every cell
/// first replays the same warm-up launches under `warmup`'s policies,
/// then runs the remaining launches under its own pair.
///
/// All cells of one workload share a byte-identical warm-up, so a
/// prefix-forking [`Executor`] simulates that warm-up once and forks
/// the twenty tails from the snapshot — this sweep is the workload
/// behind `BENCH_sweep.json`.
pub fn warmed_policy_grid(
    exec: &Executor,
    workload: &dyn Workload,
    warmup: Warmup,
) -> WarmedGridSweep {
    let mut plan = exec.plan();
    for p in PrefetchPolicy::ALL {
        for e in EvictPolicy::ALL {
            plan.submit(
                workload,
                RunOptions::default()
                    .with_prefetch(p)
                    .with_evict(e)
                    .with_memory_frac(1.10)
                    .with_warmup(warmup),
            );
        }
    }
    let results = plan.execute();

    let headers = ["evictor", "none", "Rp", "SLp", "TBNp"];
    let title = |what: &str| format!("Warmed policy grid ({}): {what}", workload.name());
    let mut time = Table::new(title("kernel time ms"), &headers);
    let mut bandwidth = Table::new(title("read bandwidth GB/s"), &headers);
    let mut faults = Table::new(title("far-faults"), &headers);
    for (ei, e) in EvictPolicy::ALL.iter().enumerate() {
        let mut t_row = vec![e.to_string()];
        let mut b_row = vec![e.to_string()];
        let mut f_row = vec![e.to_string()];
        for pi in 0..PrefetchPolicy::ALL.len() {
            // Submission order was prefetcher-major.
            let r = &results[pi * EvictPolicy::ALL.len() + ei];
            t_row.push(fmt(r.total_ms()));
            b_row.push(fmt(r.read_bandwidth_gbps));
            f_row.push(r.far_faults.to_string());
        }
        time.row_owned(t_row);
        bandwidth.row_owned(b_row);
        faults.row_owned(f_row);
    }
    WarmedGridSweep {
        time,
        bandwidth,
        faults,
    }
}

// ---------------------------------------------------------------------
// Figures 6-7: over-subscription sensitivity with LRU-4KB eviction
// ---------------------------------------------------------------------

/// Results of the over-subscription/free-page-buffer sweep.
#[derive(Clone, Debug)]
pub struct OversubscriptionSweep {
    /// Fig. 6: kernel time (ms) per benchmark × setting.
    pub time: Table,
    /// Fig. 7: count of 4 KB page transfers (read channel).
    pub transfers_4k: Table,
}

/// Figs. 6-7: TBNp active until device memory fills, then disabled;
/// LRU-4KB eviction; over-subscription 105/110/125 % plus 5 %/10 %
/// free-page buffers at 110 %.
pub fn oversubscription_sweep(exec: &Executor, scale: Scale) -> OversubscriptionSweep {
    let settings: [(Option<f64>, f64); 6] = [
        (None, 0.0),
        (Some(1.05), 0.0),
        (Some(1.10), 0.0),
        (Some(1.25), 0.0),
        (Some(1.10), 0.05),
        (Some(1.10), 0.10),
    ];
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for (frac, buffer) in settings {
            let mut opts = RunOptions::default()
                .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                .with_evict(EvictPolicy::LruPage)
                .with_disable_prefetch_on_oversubscription(frac.is_some())
                .with_free_buffer_frac(buffer);
            opts.memory_frac = frac;
            plan.submit(w.as_ref(), opts);
        }
    }
    let mut results = plan.execute().into_iter();

    let headers = [
        "benchmark",
        "100%",
        "105%",
        "110%",
        "125%",
        "110%+buf5",
        "110%+buf10",
    ];
    let mut time = Table::new(
        "Fig 6: kernel time (ms) vs over-subscription and free-page buffer",
        &headers,
    );
    let mut transfers = Table::new("Fig 7: number of 4KB page transfers", &headers);
    for w in &suite {
        let mut t_row = vec![w.name().to_string()];
        let mut x_row = vec![w.name().to_string()];
        for _ in settings {
            let r = results.next().expect("plan covers every cell");
            t_row.push(fmt(r.total_ms()));
            x_row.push(r.read_transfers_4k.to_string());
        }
        time.row_owned(t_row);
        transfers.row_owned(x_row);
    }
    OversubscriptionSweep {
        time,
        transfers_4k: transfers,
    }
}

// ---------------------------------------------------------------------
// Figures 9-10: eviction policies in isolation
// ---------------------------------------------------------------------

/// Results of the eviction-in-isolation comparison.
#[derive(Clone, Debug)]
pub struct EvictionIsolation {
    /// Fig. 9: kernel time (ms), LRU vs Random 4 KB eviction.
    pub time: Table,
    /// Fig. 10: total 4 KB pages evicted.
    pub evicted: Table,
}

/// Figs. 9-10: working set at 110 %, TBNp active until capacity then
/// disabled (4 KB on-demand only), comparing LRU vs Random eviction.
pub fn eviction_isolation(exec: &Executor, scale: Scale) -> EvictionIsolation {
    let evicts = [EvictPolicy::LruPage, EvictPolicy::RandomPage];
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for evict in evicts {
            let opts = RunOptions::default()
                .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                .with_evict(evict)
                .with_memory_frac(1.10)
                .with_disable_prefetch_on_oversubscription(true);
            plan.submit(w.as_ref(), opts);
        }
    }
    let mut results = plan.execute().into_iter();

    let headers = ["benchmark", "LRU", "Random"];
    let mut time = Table::new(
        "Fig 9: kernel time (ms), eviction policies in isolation (110%)",
        &headers,
    );
    let mut evicted = Table::new("Fig 10: total pages evicted", &headers);
    for w in &suite {
        let mut t_row = vec![w.name().to_string()];
        let mut e_row = vec![w.name().to_string()];
        for _ in evicts {
            let r = results.next().expect("plan covers every cell");
            t_row.push(fmt(r.total_ms()));
            e_row.push(r.pages_evicted.to_string());
        }
        time.row_owned(t_row);
        evicted.row_owned(e_row);
    }
    EvictionIsolation { time, evicted }
}

// ---------------------------------------------------------------------
// Figure 11: prefetcher + pre-eviction combinations
// ---------------------------------------------------------------------

/// The four policy combinations of Fig. 11.
pub const COMBOS: [(&str, PrefetchPolicy, EvictPolicy, bool); 4] = [
    // (label, prefetcher, evictor, disable-prefetch-on-oversubscription)
    (
        "LRU4K+none",
        PrefetchPolicy::TreeBasedNeighborhood,
        EvictPolicy::LruPage,
        true,
    ),
    (
        "Re+Rp",
        PrefetchPolicy::Random,
        EvictPolicy::RandomPage,
        false,
    ),
    (
        "SLe+SLp",
        PrefetchPolicy::SequentialLocal,
        EvictPolicy::SequentialLocal,
        false,
    ),
    (
        "TBNe+TBNp",
        PrefetchPolicy::TreeBasedNeighborhood,
        EvictPolicy::TreeBasedNeighborhood,
        false,
    ),
];

/// Fig. 11: kernel time (ms) for the four prefetcher/eviction
/// combinations at 110 % over-subscription. TBNp is active before
/// capacity in every setting.
pub fn policy_combinations(exec: &Executor, scale: Scale) -> Table {
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for (_, prefetch, evict, disable) in COMBOS {
            let opts = RunOptions::default()
                .with_prefetch(prefetch)
                .with_evict(evict)
                .with_memory_frac(1.10)
                .with_disable_prefetch_on_oversubscription(disable);
            plan.submit(w.as_ref(), opts);
        }
    }
    let mut results = plan.execute().into_iter();

    let mut t = Table::new(
        "Fig 11: kernel time (ms), prefetcher x pre-eviction combos (110%)",
        &["benchmark", "LRU4K+none", "Re+Rp", "SLe+SLp", "TBNe+TBNp"],
    );
    for w in &suite {
        let mut row = vec![w.name().to_string()];
        for _ in COMBOS {
            let r = results.next().expect("plan covers every cell");
            row.push(fmt(r.total_ms()));
        }
        t.row_owned(row);
    }
    t
}

/// Registry-driven pair study: kernel time, far-faults, and thrashing
/// for an arbitrary prefetcher × evictor pair at `frac`
/// over-subscription (the binaries default to 1.10), next to the
/// driver baseline (none + LRU-4KB) and the paper's best combination
/// (TBNp + TBNe). The pair is typically named on an ablation binary's
/// command line and resolved through the
/// [`PolicyRegistry`](uvm_core::PolicyRegistry), so out-of-core
/// policies like S256p or AFe plug in without any experiment changes.
pub fn policy_pair(
    exec: &Executor,
    scale: Scale,
    prefetch: impl Into<PolicySpec>,
    evict: impl Into<PolicySpec>,
    frac: f64,
) -> Table {
    let prefetch: PolicySpec = prefetch.into();
    let evict: PolicySpec = evict.into();
    let pairs = [
        (
            PolicySpec::from(PrefetchPolicy::None),
            PolicySpec::from(EvictPolicy::LruPage),
        ),
        (prefetch.clone(), evict.clone()),
        (
            PolicySpec::from(PrefetchPolicy::TreeBasedNeighborhood),
            PolicySpec::from(EvictPolicy::TreeBasedNeighborhood),
        ),
    ];
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for (p, e) in &pairs {
            let opts = RunOptions::default()
                .with_prefetch(p)
                .with_evict(e)
                .with_memory_frac(frac);
            plan.submit(w.as_ref(), opts);
        }
    }
    let mut results = plan.execute().into_iter();

    let mut t = Table::new(
        format!(
            "Policy pair study: {prefetch}+{evict} vs baselines ({:.0}%)",
            frac * 100.0
        ),
        &[
            "benchmark",
            "baseline ms",
            "pair ms",
            "TBN ms",
            "pair faults",
            "pair thrashed",
        ],
    );
    for w in &suite {
        let baseline = results.next().expect("plan covers every cell");
        let pair = results.next().expect("plan covers every cell");
        let tbn = results.next().expect("plan covers every cell");
        t.row_owned(vec![
            w.name().to_string(),
            fmt(baseline.total_ms()),
            fmt(pair.total_ms()),
            fmt(tbn.total_ms()),
            pair.far_faults.to_string(),
            pair.pages_thrashed.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 12: nw page-access pattern
// ---------------------------------------------------------------------

/// Fig. 12: the nw page-access scatter (cycle, virtual page) for the
/// requested kernel launches (the paper shows launches 60 and 70),
/// with no memory budget (no eviction).
pub fn nw_trace(exec: &Executor, scale: Scale, launches: &[usize]) -> Vec<(usize, Table)> {
    let nw = match scale {
        Scale::Paper => NeedlemanWunsch::default(),
        Scale::Smoke => NeedlemanWunsch {
            rows: 128,
            tile: 16,
        },
    };
    let r = exec.run_one(&nw, RunOptions::default().with_trace(true));
    launches
        .iter()
        .filter(|&&l| l < r.traces.len())
        .map(|&l| {
            let mut t = Table::new(
                format!("Fig 12: nw page accesses, launch {l}"),
                &["cycle", "page"],
            );
            for ev in &r.traces[l] {
                t.row_owned(vec![
                    ev.cycle.index().to_string(),
                    ev.page.index().to_string(),
                ]);
            }
            (l, t)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 13: over-subscription sensitivity of TBNe + TBNp
// ---------------------------------------------------------------------

/// Fig. 13: kernel time (ms) of the TBNe+TBNp combination as the
/// over-subscription percentage grows.
pub fn tbn_oversubscription_sensitivity(exec: &Executor, scale: Scale) -> Table {
    let fracs = [None, Some(1.05), Some(1.10), Some(1.25), Some(1.50)];
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for frac in fracs {
            let mut opts = RunOptions::default()
                .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                .with_evict(EvictPolicy::TreeBasedNeighborhood);
            opts.memory_frac = frac;
            plan.submit(w.as_ref(), opts);
        }
    }
    let mut results = plan.execute().into_iter();

    let mut t = Table::new(
        "Fig 13: TBNe+TBNp sensitivity to over-subscription (time ms)",
        &["benchmark", "100%", "105%", "110%", "125%", "150%"],
    );
    for w in &suite {
        let mut row = vec![w.name().to_string()];
        for _ in fracs {
            let r = results.next().expect("plan covers every cell");
            row.push(fmt(r.total_ms()));
        }
        t.row_owned(row);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 14: reserving the top of the LRU list
// ---------------------------------------------------------------------

/// Fig. 14: kernel time (ms) with 0 / 10 / 20 % of the LRU list
/// reserved from eviction; TBNe+TBNp at 110 %.
pub fn lru_reservation(exec: &Executor, scale: Scale) -> Table {
    let reserves = [0.0, 0.10, 0.20];
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for reserve in reserves {
            let opts = RunOptions::default()
                .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                .with_evict(EvictPolicy::TreeBasedNeighborhood)
                .with_memory_frac(1.10)
                .with_reserve_frac(reserve);
            plan.submit(w.as_ref(), opts);
        }
    }
    let mut results = plan.execute().into_iter();

    let mut t = Table::new(
        "Fig 14: effect of reserving the top of the LRU list (time ms)",
        &["benchmark", "0%", "10%", "20%"],
    );
    for w in &suite {
        let mut row = vec![w.name().to_string()];
        for _ in reserves {
            let r = results.next().expect("plan covers every cell");
            row.push(fmt(r.total_ms()));
        }
        t.row_owned(row);
    }
    t
}

// ---------------------------------------------------------------------
// Figures 15-16: TBNe vs static 2 MB eviction
// ---------------------------------------------------------------------

/// Results of the TBNe vs 2 MB LRU comparison.
#[derive(Clone, Debug)]
pub struct LargePageComparison {
    /// Fig. 15: kernel time (ms) at 110 %.
    pub time: Table,
    /// Fig. 16: pages thrashed at 110 % and 125 %.
    pub thrash: Table,
}

/// Figs. 15-16: TBNe against static 2 MB LRU eviction, both with TBNp
/// prefetching.
pub fn tbne_vs_2mb(exec: &Executor, scale: Scale) -> LargePageComparison {
    let fracs = [1.10, 1.25];
    let evicts = [
        EvictPolicy::TreeBasedNeighborhood,
        EvictPolicy::LruLargePage,
    ];
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for frac in fracs {
            for evict in evicts {
                let opts = RunOptions::default()
                    .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                    .with_evict(evict)
                    .with_memory_frac(frac);
                plan.submit(w.as_ref(), opts);
            }
        }
    }
    let mut results = plan.execute().into_iter();

    let mut time = Table::new(
        "Fig 15: TBNe vs 2MB LRU eviction (time ms, 110%)",
        &["benchmark", "TBNe", "LRU-2MB"],
    );
    let mut thrash = Table::new(
        "Fig 16: pages thrashed, TBNe vs 2MB eviction",
        &[
            "benchmark",
            "TBNe@110%",
            "2MB@110%",
            "TBNe@125%",
            "2MB@125%",
        ],
    );
    for w in &suite {
        let mut t_row = vec![w.name().to_string()];
        let mut h_row = vec![w.name().to_string()];
        for frac in fracs {
            for _ in evicts {
                let r = results.next().expect("plan covers every cell");
                if (frac - 1.10).abs() < 1e-9 {
                    t_row.push(fmt(r.total_ms()));
                }
                h_row.push(r.pages_thrashed.to_string());
            }
        }
        time.row_owned(t_row);
        thrash.row_owned(h_row);
    }
    LargePageComparison { time, thrash }
}

// ---------------------------------------------------------------------
// Sec. 7 access-pattern analysis (the paper's explanatory methodology)
// ---------------------------------------------------------------------

/// Characterises every benchmark's page-access pattern (the analysis
/// the paper performs in Sec. 7 to explain its results): footprint,
/// reuse, sequentiality, spread, and the classified pattern.
pub fn pattern_analysis(exec: &Executor, scale: Scale) -> Table {
    use crate::pattern::PatternSummary;
    let mut t = Table::new(
        "Sec 7: access-pattern characterisation",
        &[
            "benchmark",
            "accesses",
            "unique_pages",
            "touches_per_page",
            "sequentiality",
            "reuse_fraction",
            "class",
        ],
    );
    for w in suite(scale) {
        let r = exec.run_one(w.as_ref(), RunOptions::default().with_trace(true));
        let s = PatternSummary::from_traces(&r.traces);
        t.row_owned(vec![
            w.name().to_string(),
            s.accesses.to_string(),
            s.unique_pages.to_string(),
            fmt(s.mean_touches_per_page),
            fmt(s.sequentiality),
            fmt(s.reuse_fraction),
            s.classify().to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Ablations (design-choice studies beyond the paper's figures)
// ---------------------------------------------------------------------

/// Ablation: the paper's SLp (64 KB, block-aligned) versus the Zheng
/// et al. 512 KB sequential prefetcher it was designed to replace
/// (Sec. 3.2 discussion), with no memory budget.
pub fn prefetch_granularity_ablation(exec: &Executor, scale: Scale) -> Table {
    let policies = [
        PrefetchPolicy::SequentialLocal,
        PrefetchPolicy::Sequential512K,
        PrefetchPolicy::TreeBasedNeighborhood,
    ];
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for p in policies {
            plan.submit(w.as_ref(), RunOptions::default().with_prefetch(p));
        }
    }
    let mut results = plan.execute().into_iter();

    let mut t = Table::new(
        "Ablation: SLp (64KB block-aligned) vs Zheng 512K vs TBNp (time ms)",
        &["benchmark", "SLp", "SZp", "TBNp"],
    );
    for w in &suite {
        let mut row = vec![w.name().to_string()];
        for _ in policies {
            let r = results.next().expect("plan covers every cell");
            row.push(fmt(r.total_ms()));
        }
        t.row_owned(row);
    }
    t
}

/// Ablation: sensitivity of the TBNe+TBNp combination (110 %) to the
/// number of concurrent fault-handling lanes (DESIGN.md §4).
pub fn fault_lanes_ablation(exec: &Executor, scale: Scale, lanes: &[usize]) -> Table {
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for &l in lanes {
            let opts = RunOptions::default()
                .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                .with_evict(EvictPolicy::TreeBasedNeighborhood)
                .with_memory_frac(1.10)
                .with_fault_lanes(l);
            plan.submit(w.as_ref(), opts);
        }
    }
    let mut results = plan.execute().into_iter();

    let mut headers: Vec<String> = vec!["benchmark".into()];
    headers.extend(lanes.iter().map(|l| format!("{l}lane")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Ablation: fault-handling lanes (TBNe+TBNp, 110%, time ms)",
        &headers_ref,
    );
    for w in &suite {
        let mut row = vec![w.name().to_string()];
        for _ in lanes {
            let r = results.next().expect("plan covers every cell");
            row.push(fmt(r.total_ms()));
        }
        t.row_owned(row);
    }
    t
}

/// Ablation: prefetch accuracy under over-subscription (110 %) — the
/// fraction of prefetched pages that are used before eviction, and the
/// clean pages the bulk write-backs move. This quantifies Sec. 5's
/// "unused prefetched pages" argument.
pub fn prefetch_accuracy_ablation(exec: &Executor, scale: Scale) -> Table {
    let combos: [(&str, PrefetchPolicy, EvictPolicy); 2] = [
        (
            "SLe+SLp",
            PrefetchPolicy::SequentialLocal,
            EvictPolicy::SequentialLocal,
        ),
        (
            "TBNe+TBNp",
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::TreeBasedNeighborhood,
        ),
    ];
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for (_, prefetch, evict) in combos {
            let opts = RunOptions::default()
                .with_prefetch(prefetch)
                .with_evict(evict)
                .with_memory_frac(1.10);
            plan.submit(w.as_ref(), opts);
        }
    }
    let mut results = plan.execute().into_iter();

    let mut t = Table::new(
        "Ablation: prefetch accuracy and clean write-backs (110%)",
        &[
            "benchmark",
            "combo",
            "prefetched",
            "used",
            "wasted",
            "accuracy",
            "clean_writebacks",
        ],
    );
    for w in &suite {
        for (label, _, _) in combos {
            let r = results.next().expect("plan covers every cell");
            let resolved = r.prefetched_used + r.prefetched_wasted;
            let accuracy = if resolved == 0 {
                1.0
            } else {
                r.prefetched_used as f64 / resolved as f64
            };
            t.row_owned(vec![
                w.name().to_string(),
                label.to_string(),
                r.pages_prefetched.to_string(),
                r.prefetched_used.to_string(),
                r.prefetched_wasted.to_string(),
                fmt(accuracy),
                r.clean_pages_written_back.to_string(),
            ]);
        }
    }
    t
}

/// Ablation: fault sensitivity of the Fig. 11 prefetcher × evictor
/// combinations at 110 % over-subscription. Each combination runs
/// once clean ([`FaultPlan::none`]) and once under `plan`; the table
/// reports the slowdown plus the per-category injection counters, so
/// the robustness ranking of the policy pairs can be compared against
/// their clean ranking.
pub fn fault_injection_ablation(exec: &Executor, scale: Scale, plan: FaultPlan) -> Table {
    let suite = suite(scale);
    let mut batch = exec.plan();
    for w in &suite {
        for (_, prefetch, evict, disable) in COMBOS {
            let base = RunOptions::default()
                .with_prefetch(prefetch)
                .with_evict(evict)
                .with_memory_frac(1.10)
                .with_disable_prefetch_on_oversubscription(disable);
            batch.submit(w.as_ref(), base.clone());
            batch.submit(w.as_ref(), base.with_fault_plan(plan));
        }
    }
    let mut results = batch.execute().into_iter();

    let mut t = Table::new(
        format!(
            "Ablation: fault-injection sensitivity (110%, seed {:#x})",
            plan.seed
        ),
        &[
            "benchmark",
            "combo",
            "clean_ms",
            "faulty_ms",
            "slowdown",
            "transfer_retries",
            "transfer_giveups",
            "migration_retries",
            "migration_giveups",
            "emergency_evictions",
        ],
    );
    for w in &suite {
        for (label, _, _, _) in COMBOS {
            let clean = results.next().expect("plan covers every cell");
            let faulty = results.next().expect("plan covers every cell");
            let slowdown = if clean.total_ms() > 0.0 {
                faulty.total_ms() / clean.total_ms()
            } else {
                1.0
            };
            t.row_owned(vec![
                w.name().to_string(),
                label.to_string(),
                fmt(clean.total_ms()),
                fmt(faulty.total_ms()),
                fmt(slowdown),
                faulty.transfer_retries.to_string(),
                faulty.transfer_giveups.to_string(),
                faulty.migration_retries.to_string(),
                faulty.migration_giveups.to_string(),
                faulty.emergency_evictions.to_string(),
            ]);
        }
    }
    t
}

/// Ablation of the Sec. 5.1 design choice: write back whole victim
/// groups as single units (the paper's choice) versus writing back
/// only the dirty pages, under SLe+SLp at 110 %.
pub fn writeback_ablation(exec: &Executor, scale: Scale) -> Table {
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for dirty_only in [false, true] {
            let opts = RunOptions::default()
                .with_prefetch(PrefetchPolicy::SequentialLocal)
                .with_evict(EvictPolicy::SequentialLocal)
                .with_memory_frac(1.10)
                .with_writeback_dirty_only(dirty_only);
            plan.submit(w.as_ref(), opts);
        }
    }
    let mut results = plan.execute().into_iter();

    let mut t = Table::new(
        "Ablation: bulk-unit vs dirty-only write-back (SLe+SLp, 110%)",
        &[
            "benchmark",
            "bulk_ms",
            "dirty_only_ms",
            "bulk_write_mb",
            "dirty_only_write_mb",
            "bulk_write_bw",
            "dirty_only_write_bw",
        ],
    );
    for w in &suite {
        let bulk = results.next().expect("plan covers every cell");
        let dirty = results.next().expect("plan covers every cell");
        let mb = |b: uvm_types::Bytes| b.bytes() as f64 / (1024.0 * 1024.0);
        t.row_owned(vec![
            w.name().to_string(),
            fmt(bulk.total_ms()),
            fmt(dirty.total_ms()),
            fmt(mb(bulk.write_bytes)),
            fmt(mb(dirty.write_bytes)),
            fmt(bulk.write_bandwidth_gbps),
            fmt(dirty.write_bandwidth_gbps),
        ]);
    }
    t
}

/// The policy pairs compared by [`huge_page_ablation`]: the paper's
/// best combination, static 2 MB LRU eviction, and the Mosaic-style
/// coalescing pair.
pub const HUGE_PAGE_COMBOS: [(&str, PrefetchPolicy, EvictPolicy); 3] = [
    (
        "TBNp+TBNe",
        PrefetchPolicy::TreeBasedNeighborhood,
        EvictPolicy::TreeBasedNeighborhood,
    ),
    (
        "TBNp+LRU2MB",
        PrefetchPolicy::TreeBasedNeighborhood,
        EvictPolicy::LruLargePage,
    ),
    (
        "MOSp+MOSe",
        PrefetchPolicy::MosaicCoalesce,
        EvictPolicy::MosaicSplinter,
    ),
];

/// Over-subscription levels swept by [`huge_page_ablation`] when the
/// caller does not narrow the sweep with `--oversub`.
pub const HUGE_PAGE_OVERSUB: [f64; 3] = [1.10, 1.25, 1.50];

/// Results of the huge-page policy ablation.
#[derive(Clone, Debug)]
pub struct HugePageAblation {
    /// Far-faults per thousand completed accesses, per
    /// benchmark × over-subscription row and policy-pair column.
    pub faults_per_kilo: Table,
    /// Kernel time (ms) on the same grid.
    pub time: Table,
    /// Huge-page mechanism activity (coalesces, splinters, allocator
    /// churn) for *cold-start* MOSp+MOSe runs at the same
    /// over-subscription levels. Cold runs get allocator cooperation
    /// from first touch, so the counters are live; the warmed cells
    /// above inherit the warm-up's fragmented frame pool, where no
    /// free 2 MB region survives at capacity and the counters stay
    /// zero — the Mosaic fragmentation argument, observed directly
    /// (DESIGN.md §9).
    pub activity: Table,
}

/// Ablation: the Mosaic-style coalescing pair (MOSp+MOSe) against the
/// paper's best combination (TBNp+TBNe) and static 2 MB LRU eviction,
/// swept over [`HUGE_PAGE_OVERSUB`] over-subscription levels. Every
/// cell is taken in steady state: it replays the same warm-up launches
/// under `warmup`'s policies first, so a prefix-forking [`Executor`]
/// simulates each workload × over-subscription warm-up once and forks
/// the three policy tails from the snapshot.
///
/// The qualitative expectation (the Mosaic result): on regular
/// workloads at ≥ 125 % over-subscription, MOSp+MOSe sustains fewer
/// faults per kilo-access than TBNp+LRU2MB, because splintering the
/// coldest huge page and evicting only its LRU blocks avoids the
/// whole-2MB write-back-and-refault cycle.
pub fn huge_page_ablation(
    exec: &Executor,
    scale: Scale,
    warmup: Warmup,
    oversubs: &[f64],
) -> HugePageAblation {
    let suite = suite(scale);
    let mut plan = exec.plan();
    for w in &suite {
        for &frac in oversubs {
            for (_, prefetch, evict) in HUGE_PAGE_COMBOS {
                plan.submit(
                    w.as_ref(),
                    RunOptions::default()
                        .with_prefetch(prefetch)
                        .with_evict(evict)
                        .with_memory_frac(frac)
                        .with_warmup(warmup),
                );
            }
            // Cold Mosaic run for the mechanism-activity table.
            let (_, prefetch, evict) = HUGE_PAGE_COMBOS[2];
            plan.submit(
                w.as_ref(),
                RunOptions::default()
                    .with_prefetch(prefetch)
                    .with_evict(evict)
                    .with_memory_frac(frac),
            );
        }
    }
    let mut results = plan.execute().into_iter();

    let headers = [
        "benchmark",
        "oversub",
        "TBNp+TBNe",
        "TBNp+LRU2MB",
        "MOSp+MOSe",
    ];
    let mut faults_per_kilo = Table::new(
        "Huge-page ablation: far-faults per kilo-access (warmed)",
        &headers,
    );
    let mut time = Table::new("Huge-page ablation: kernel time (ms, warmed)", &headers);
    let mut activity = Table::new(
        "Huge-page ablation: MOSp+MOSe mechanism activity (cold start)",
        &[
            "benchmark",
            "oversub",
            "coalesces",
            "splinters",
            "forced_splinters",
            "alloc_splits",
            "alloc_merges",
            "regions_reserved",
            "region_steals",
        ],
    );
    for w in &suite {
        for &frac in oversubs {
            let oversub = format!("{:.0}%", frac * 100.0);
            let mut f_row = vec![w.name().to_string(), oversub.clone()];
            let mut t_row = vec![w.name().to_string(), oversub.clone()];
            for _ in HUGE_PAGE_COMBOS {
                let r = results.next().expect("plan covers every cell");
                f_row.push(fmt(r.faults_per_kilo_access()));
                t_row.push(fmt(r.total_ms()));
            }
            faults_per_kilo.row_owned(f_row);
            time.row_owned(t_row);
            let cold = results.next().expect("plan covers every cell");
            let hp = &cold.huge_pages;
            activity.row_owned(vec![
                w.name().to_string(),
                oversub,
                hp.coalesces.to_string(),
                hp.splinters.to_string(),
                hp.forced_splinters.to_string(),
                hp.alloc_splits.to_string(),
                hp.alloc_merges.to_string(),
                hp.regions_reserved.to_string(),
                hp.region_steals.to_string(),
            ]);
        }
    }
    HugePageAblation {
        faults_per_kilo,
        time,
        activity,
    }
}

// ---------------------------------------------------------------------
// History-based prefetcher ablation (DESIGN.md §10)
// ---------------------------------------------------------------------

/// Over-subscription levels of the history-prefetcher ablation.
pub const HISTORY_PREFETCH_OVERSUB: [f64; 2] = [1.10, 1.25];

/// Results of the history-based prefetcher head-to-head.
#[derive(Clone, Debug)]
pub struct HistoryPrefetchAblation {
    /// Far-faults per thousand completed accesses, per benchmark ×
    /// over-subscription row and prefetcher column.
    pub faults_per_kilo: Table,
    /// Kernel time (ms) on the same grid.
    pub time: Table,
}

/// Ablation: the history-based prefetchers (the online `markov`
/// delta-correlator and the offline-trained `learned` table) against
/// no prefetching, sequential-local, and the paper's TBNp, all over
/// LRU-4KB eviction so the prefetcher is the only variable. Every
/// cell is warmed like [`huge_page_ablation`]: the same warm-up
/// launches replay under `warmup`'s policies first, so a
/// prefix-forking [`Executor`] simulates each workload ×
/// over-subscription warm-up once and forks the five policy tails
/// from the snapshot.
///
/// `learned_for` supplies the per-benchmark `learned` spec — its
/// `table` parameter points at that benchmark's trained `.tbl` file.
/// The `ablation_history_prefetch` binary trains those tables from
/// no-prefetch traces exported in the same invocation, closing the
/// export → train → evaluate loop.
pub fn history_prefetch_ablation(
    exec: &Executor,
    scale: Scale,
    warmup: Warmup,
    oversubs: &[f64],
    learned_for: &dyn Fn(&str) -> PolicySpec,
) -> HistoryPrefetchAblation {
    let suite = suite(scale);
    let specs_for = |name: &str| -> Vec<PolicySpec> {
        vec![
            PrefetchPolicy::None.into(),
            PrefetchPolicy::SequentialLocal.into(),
            PrefetchPolicy::TreeBasedNeighborhood.into(),
            PolicySpec::new("markov"),
            learned_for(name),
        ]
    };
    let mut plan = exec.plan();
    for w in &suite {
        for &frac in oversubs {
            for spec in specs_for(w.name()) {
                plan.submit(
                    w.as_ref(),
                    RunOptions::default()
                        .with_prefetch(spec)
                        .with_evict(EvictPolicy::LruPage)
                        .with_memory_frac(frac)
                        .with_warmup(warmup),
                );
            }
        }
    }
    let mut results = plan.execute().into_iter();

    let headers = [
        "benchmark",
        "oversub",
        "NOp",
        "SLp",
        "TBNp",
        "markov",
        "learned",
    ];
    let mut faults_per_kilo = Table::new(
        "History-prefetcher ablation: far-faults per kilo-access (warmed)",
        &headers,
    );
    let mut time = Table::new(
        "History-prefetcher ablation: kernel time (ms, warmed)",
        &headers,
    );
    for w in &suite {
        for &frac in oversubs {
            let oversub = format!("{:.0}%", frac * 100.0);
            let mut f_row = vec![w.name().to_string(), oversub.clone()];
            let mut t_row = vec![w.name().to_string(), oversub];
            for _ in specs_for(w.name()) {
                let r = results.next().expect("plan covers every cell");
                f_row.push(fmt(r.faults_per_kilo_access()));
                t_row.push(fmt(r.total_ms()));
            }
            faults_per_kilo.row_owned(f_row);
            time.row_owned(t_row);
        }
    }
    HistoryPrefetchAblation {
        faults_per_kilo,
        time,
    }
}

// ---------------------------------------------------------------------
// Figures 2 and 8: worked-example walkthroughs
// ---------------------------------------------------------------------

/// Fig. 2: replays both TBNp worked examples on a 512 KB chunk and
/// renders each step's prefetch decision.
pub fn fig2_walkthrough() -> String {
    let mut out = String::new();
    for (label, order) in [
        (
            "Fig 2(a): faults on blocks 1,3,5,7,0",
            vec![1u64, 3, 5, 7, 0],
        ),
        ("Fig 2(b): faults on blocks 1,3,0,4", vec![1, 3, 0, 4]),
    ] {
        out.push_str(label);
        out.push('\n');
        let mut tree = AllocTree::new(TreeExtent {
            first_block: BasicBlockId::new(0),
            num_blocks: 8,
        });
        for (i, b) in order.iter().enumerate() {
            let block = BasicBlockId::new(*b);
            let plan = tree.plan_prefetch(block);
            out.push_str(&format!(
                "  fault {} on block {b}: prefetch {:?}\n",
                i + 1,
                plan.iter().map(|p| p.index()).collect::<Vec<_>>()
            ));
            tree.fill_block(block);
            for p in plan {
                tree.fill_block(p);
            }
        }
        out.push_str(&format!(
            "  resident: {} / {} pages\n",
            tree.root_valid_pages(),
            tree.capacity_pages()
        ));
    }
    out
}

/// Fig. 8: replays the TBNe worked example (evictions of blocks
/// 1, 3, 4, 0 on a fully valid 512 KB chunk).
pub fn fig8_walkthrough() -> String {
    let mut out = String::new();
    out.push_str("Fig 8: TBNe pre-eviction on a full 512 KB chunk\n");
    let mut tree = AllocTree::new(TreeExtent {
        first_block: BasicBlockId::new(0),
        num_blocks: 8,
    });
    for b in 0..8 {
        tree.fill_block(BasicBlockId::new(b));
    }
    for (i, b) in [1u64, 3, 4, 0].iter().enumerate() {
        let block = BasicBlockId::new(*b);
        let plan = tree.plan_eviction(block);
        out.push_str(&format!(
            "  eviction {} of block {b}: pre-evict {:?}\n",
            i + 1,
            plan.iter().map(|p| p.index()).collect::<Vec<_>>()
        ));
        tree.clear_block(block);
        for p in plan {
            tree.clear_block(p);
        }
    }
    out.push_str(&format!(
        "  resident: {} / {} pages\n",
        tree.root_valid_pages(),
        tree.capacity_pages()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.num_rows(), 5);
        assert!((t.value("4", "bandwidth_gbps").unwrap() - 3.2219).abs() < 1e-3);
        assert!((t.value("1024", "bandwidth_gbps").unwrap() - 11.223).abs() < 1e-3);
    }

    #[test]
    fn smoke_suite_matches_paper_suite_names() {
        let paper: Vec<_> = suite(Scale::Paper).iter().map(|w| w.name()).collect();
        let smoke: Vec<_> = suite(Scale::Smoke).iter().map(|w| w.name()).collect();
        let mut p = paper.clone();
        let mut s = smoke.clone();
        p.sort_unstable();
        s.sort_unstable();
        assert_eq!(p, s);
    }

    #[test]
    fn fig2_walkthrough_reproduces_paper_decisions() {
        let text = fig2_walkthrough();
        assert!(text.contains("fault 5 on block 0: prefetch [2, 4, 6]"));
        assert!(text.contains("fault 4 on block 4: prefetch [5, 6, 7]"));
        assert!(text.contains("resident: 128 / 128 pages"));
    }

    #[test]
    fn fig8_walkthrough_reproduces_paper_decisions() {
        let text = fig8_walkthrough();
        assert!(text.contains("eviction 4 of block 0: pre-evict [2, 5, 6, 7]"));
        assert!(text.contains("resident: 0 / 128 pages"));
    }

    #[test]
    fn nw_trace_produces_scatter_series() {
        let exec = Executor::new(1);
        let traces = nw_trace(&exec, Scale::Smoke, &[3, 9999]);
        assert_eq!(traces.len(), 1, "out-of-range launches are skipped");
        let (launch, table) = &traces[0];
        assert_eq!(*launch, 3);
        assert!(table.num_rows() > 0);
    }
}
