//! Plain-text result tables (figure/table regeneration output).

use std::fmt;

/// A simple aligned-column table with a title, printable as text or
/// CSV. Used by every experiment runner to emit the rows/series the
/// paper's figures plot.
///
/// # Examples
///
/// ```
/// use uvm_sim::Table;
///
/// let mut t = Table::new("Table 1: PCI-e bandwidth", &["size", "GB/s"]);
/// t.row(&["4KB", "3.22"]);
/// let text = t.to_string();
/// assert!(text.contains("4KB"));
/// assert!(t.to_csv().starts_with("size,GB/s"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row, column), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Finds the first row whose first cell equals `key`.
    pub fn find_row(&self, key: &str) -> Option<&[String]> {
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(key))
            .map(Vec::as_slice)
    }

    /// Column index by header name.
    pub fn col_index(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }

    /// Looks up a cell by row key (first column) and column header,
    /// parsed as `f64`.
    pub fn value(&self, row_key: &str, header: &str) -> Option<f64> {
        let col = self.col_index(header)?;
        self.find_row(row_key)?.get(col)?.parse().ok()
    }

    /// Renders as CSV (header line first).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "# {}", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", &["bench", "a", "b"]);
        t.row(&["nw", "1.5", "2.5"]);
        t.row(&["bfs", "3.0", "4.0"]);
        t
    }

    #[test]
    fn lookup_by_key_and_header() {
        let t = sample();
        assert_eq!(t.value("nw", "a"), Some(1.5));
        assert_eq!(t.value("bfs", "b"), Some(4.0));
        assert_eq!(t.value("nw", "zzz"), None);
        assert_eq!(t.value("zzz", "a"), None);
        assert_eq!(t.cell(0, 0), Some("nw"));
        assert_eq!(t.cell(9, 0), None);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert_eq!(csv, "bench,a,b\nnw,1.5,2.5\nbfs,3.0,4.0\n");
    }

    #[test]
    fn display_alignment() {
        let text = sample().to_string();
        assert!(text.starts_with("# t\n"));
        assert!(text.contains("bench"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one"]);
    }
}
