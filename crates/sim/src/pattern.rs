//! Page-access-pattern analysis — the methodology of the paper's
//! Sec. 7, which explains every performance result by classifying each
//! workload's access pattern (streaming, random, iterative dense,
//! sparse-but-localized).
//!
//! [`PatternSummary`] condenses a captured access trace (the engine's
//! Fig. 12-style `(cycle, page)` stream) into the quantities the paper
//! reasons with: footprint, reuse, sequentiality, and spatial spread;
//! [`PatternSummary::classify`] maps them onto the paper's vocabulary.

use std::collections::HashMap;

use uvm_gpu::TraceEvent;

/// The paper's access-pattern vocabulary (Secs. 6.2, 7.1, 7.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PatternClass {
    /// Pages are visited once (or nearly once) in address order and
    /// never revisited — backprop, pathfinder.
    Streaming,
    /// Heavy reuse with mostly-sequential scans repeated across
    /// launches — hotspot, srad.
    IterativeDense,
    /// Reuse concentrated on pages spaced far apart in the virtual
    /// address space — nw's diagonal wavefront.
    SparseLocalized,
    /// Low sequentiality with reuse spread over the footprint — bfs.
    Random,
}

impl std::fmt::Display for PatternClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PatternClass::Streaming => "streaming",
            PatternClass::IterativeDense => "iterative-dense",
            PatternClass::SparseLocalized => "sparse-localized",
            PatternClass::Random => "random",
        })
    }
}

/// Summary statistics of one page-access trace.
///
/// # Examples
///
/// ```
/// use uvm_gpu::TraceEvent;
/// use uvm_sim::{PatternClass, PatternSummary};
/// use uvm_types::{Cycle, PageId};
///
/// // A pure stream: pages 0..100 once each, from one warp.
/// let trace: Vec<TraceEvent> = (0..100)
///     .map(|i| TraceEvent {
///         cycle: Cycle::new(i * 10),
///         page: PageId::new(i),
///         warp: 0,
///         write: false,
///     })
///     .collect();
/// let s = PatternSummary::from_trace(&trace);
/// assert_eq!(s.unique_pages, 100);
/// assert!(s.sequentiality > 0.9);
/// assert_eq!(s.classify(), PatternClass::Streaming);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PatternSummary {
    /// Total accesses in the trace.
    pub accesses: u64,
    /// Distinct pages touched.
    pub unique_pages: u64,
    /// Highest minus lowest page index touched (address spread).
    pub page_span: u64,
    /// Mean accesses per touched page (1.0 = pure streaming).
    pub mean_touches_per_page: f64,
    /// Fraction of accesses within one page of some access the same
    /// warp made among its previous eight (per-warp windowed spatial
    /// sequentiality — robust to cross-warp interleaving).
    pub sequentiality: f64,
    /// Fraction of accesses that revisit an already-touched page.
    pub reuse_fraction: f64,
    /// Mean distance (in pages) between consecutive accesses.
    pub mean_stride: f64,
}

impl PatternSummary {
    /// Computes the summary of `trace` (as captured by
    /// [`uvm_gpu::Engine::take_trace`] or [`crate::RunResult::traces`]).
    ///
    /// An empty trace yields all-zero statistics.
    pub fn from_trace(trace: &[TraceEvent]) -> Self {
        if trace.is_empty() {
            return PatternSummary {
                accesses: 0,
                unique_pages: 0,
                page_span: 0,
                mean_touches_per_page: 0.0,
                sequentiality: 0.0,
                reuse_fraction: 0.0,
                mean_stride: 0.0,
            };
        }
        let mut touches: HashMap<u64, u64> = HashMap::new();
        let mut revisits = 0u64;
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for ev in trace {
            let idx = ev.page.index();
            lo = lo.min(idx);
            hi = hi.max(idx);
            let count = touches.entry(idx).or_insert(0);
            if *count > 0 {
                revisits += 1;
            }
            *count += 1;
        }
        // Per-warp windowed sequentiality and stride: each access is
        // compared against the same warp's recent history, so the
        // metric reflects the kernel's structure rather than the
        // engine's cross-warp interleaving.
        const WINDOW: usize = 8;
        let mut history: HashMap<usize, Vec<u64>> = HashMap::new();
        let mut near = 0u64;
        let mut pairs = 0u64;
        let mut stride_sum = 0u64;
        for ev in trace {
            let h = history.entry(ev.warp).or_default();
            if let Some(&prev) = h.last() {
                pairs += 1;
                stride_sum += prev.abs_diff(ev.page.index());
                if h.iter()
                    .rev()
                    .take(WINDOW)
                    .any(|&p| p.abs_diff(ev.page.index()) <= 1)
                {
                    near += 1;
                }
            }
            h.push(ev.page.index());
        }
        let pairs = pairs.max(1) as f64;
        let accesses = trace.len() as u64;
        let unique = touches.len() as u64;
        PatternSummary {
            accesses,
            unique_pages: unique,
            page_span: hi - lo,
            mean_touches_per_page: accesses as f64 / unique as f64,
            sequentiality: near as f64 / pairs,
            reuse_fraction: revisits as f64 / accesses as f64,
            mean_stride: stride_sum as f64 / pairs,
        }
    }

    /// Merges per-launch traces into one whole-run summary.
    pub fn from_traces(traces: &[Vec<TraceEvent>]) -> Self {
        let merged: Vec<TraceEvent> = traces.iter().flatten().copied().collect();
        Self::from_trace(&merged)
    }

    /// Classifies the trace into the paper's pattern vocabulary.
    ///
    /// Thresholds follow the paper's qualitative descriptions: little
    /// reuse ⇒ streaming; reuse with dominant sequential scanning ⇒
    /// iterative-dense; reuse that jumps across the address space
    /// (large mean stride relative to the footprint) ⇒
    /// sparse-localized; otherwise random.
    pub fn classify(&self) -> PatternClass {
        if self.reuse_fraction < 0.6 && self.mean_touches_per_page < 2.5 {
            return PatternClass::Streaming;
        }
        if self.sequentiality > 0.7 {
            return PatternClass::IterativeDense;
        }
        // Sparse-localized (nw): reuse jumps across the address space
        // but lands on a small set of bands — the touched pages are a
        // sparse subset of the spanned range. Random reuse fills the
        // spanned range densely.
        let density = self.unique_pages as f64 / (self.page_span + 1) as f64;
        let relative_stride = if self.page_span == 0 {
            0.0
        } else {
            self.mean_stride / self.page_span as f64
        };
        if relative_stride > 0.05 && density < 0.5 {
            PatternClass::SparseLocalized
        } else {
            PatternClass::Random
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use uvm_types::{Cycle, PageId};

    fn at(i: u64, page: u64) -> TraceEvent {
        TraceEvent {
            cycle: Cycle::new(i),
            page: PageId::new(page),
            warp: 0,
            write: false,
        }
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = PatternSummary::from_trace(&[]);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.unique_pages, 0);
        assert_eq!(s.mean_touches_per_page, 0.0);
    }

    #[test]
    fn single_access() {
        let s = PatternSummary::from_trace(&[at(0, 42)]);
        assert_eq!(s.accesses, 1);
        assert_eq!(s.unique_pages, 1);
        assert_eq!(s.page_span, 0);
        assert_eq!(s.reuse_fraction, 0.0);
    }

    #[test]
    fn streaming_classification() {
        let trace: Vec<_> = (0..200).map(|i| at(i, i)).collect();
        let s = PatternSummary::from_trace(&trace);
        assert_eq!(s.classify(), PatternClass::Streaming);
        assert_eq!(s.mean_touches_per_page, 1.0);
        assert!(s.sequentiality > 0.99);
    }

    #[test]
    fn iterative_dense_classification() {
        // Four sequential sweeps over the same 100 pages.
        let mut trace = Vec::new();
        for rep in 0..4 {
            for p in 0..100 {
                trace.push(at(rep * 100 + p, p));
            }
        }
        let s = PatternSummary::from_trace(&trace);
        assert_eq!(s.classify(), PatternClass::IterativeDense);
        assert!((s.mean_touches_per_page - 4.0).abs() < 1e-9);
        assert!(s.reuse_fraction > 0.7);
    }

    #[test]
    fn sparse_localized_classification() {
        // nw-like: pages spaced 64 apart, revisited every "diagonal".
        let mut trace = Vec::new();
        let mut t = 0;
        for _diag in 0..8 {
            for band in 0..16 {
                trace.push(at(t, band * 64));
                t += 1;
            }
        }
        let s = PatternSummary::from_trace(&trace);
        assert_eq!(s.classify(), PatternClass::SparseLocalized);
        assert!(s.mean_stride > 32.0);
    }

    #[test]
    fn random_classification() {
        use uvm_types::rng::{Rng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(3);
        // Random accesses over a big footprint with modest reuse:
        // small strides relative to span are rare, reuse present.
        let trace: Vec<_> = (0..2000).map(|i| at(i, rng.gen_range(0u64..500))).collect();
        let s = PatternSummary::from_trace(&trace);
        assert_eq!(s.classify(), PatternClass::Random);
    }

    #[test]
    fn merged_traces_equal_concatenation() {
        let a = vec![at(0, 1), at(1, 2)];
        let b = vec![at(2, 3)];
        let merged = PatternSummary::from_traces(&[a.clone(), b.clone()]);
        let concat: Vec<_> = a.into_iter().chain(b).collect();
        assert_eq!(merged, PatternSummary::from_trace(&concat));
    }

    #[test]
    fn display_names() {
        assert_eq!(PatternClass::Streaming.to_string(), "streaming");
        assert_eq!(
            PatternClass::SparseLocalized.to_string(),
            "sparse-localized"
        );
    }
}
