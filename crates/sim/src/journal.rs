//! Write-ahead sweep journal: crash-surviving submit/complete records
//! (DESIGN.md §12).
//!
//! The executor appends one line *before* a unique run starts
//! (`S <runkey> <workload>`) and one *after* its result is safely
//! spilled (`D <runkey>`). After a crash — SIGKILL included — replaying
//! the journal partitions a re-submitted sweep into:
//!
//! * **completed** members (`S` + `D`): their spill entries are
//!   verified and served without re-simulating;
//! * **interrupted** members (`S` without `D`): restarted, from their
//!   latest valid `UVMC` checkpoint when checkpointing is on.
//!
//! Every line carries a 64-bit FNV checksum of its body, and records
//! are flushed per append, so a line either survives whole or is
//! dropped by replay as torn — a torn tail (the crash interrupting the
//! very append) never poisons the earlier history. The journal is
//! append-only across sessions; replay is idempotent.

use std::collections::HashSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use uvm_types::hash::StableHasher;

use crate::exec::RunKey;

/// An append-only, checksummed sweep journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal at `path`; the file (and its parent directory) is
    /// created on first append, not here.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Journal { path: path.into() }
    }

    /// The journal file's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records that the run identified by `key` is about to simulate.
    /// Best-effort I/O errors are returned so the caller can decide
    /// whether a degraded journal should abort the sweep.
    pub fn record_submitted(&self, key: RunKey, workload: &str) -> std::io::Result<()> {
        // Workload names never contain newlines (they are `&'static
        // str` identifiers); sanitize anyway so a hostile name cannot
        // forge a second record.
        let name: String = workload
            .chars()
            .map(|c| if c.is_control() { '_' } else { c })
            .collect();
        self.append(&format!("S {} {}", key.to_hex(), name))
    }

    /// Records that the run identified by `key` completed and its
    /// result was durably stored.
    pub fn record_done(&self, key: RunKey) -> std::io::Result<()> {
        self.append(&format!("D {}", key.to_hex()))
    }

    /// Appends one checksummed record line and flushes it to the OS,
    /// so the record survives a SIGKILL of this process.
    fn append(&self, body: &str) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        // One write syscall per line: O_APPEND keeps concurrent
        // workers' records from interleaving mid-line.
        f.write_all(format!("{:016x} {body}\n", line_check(body)).as_bytes())
    }

    /// Replays the journal into completed/interrupted sets. A missing
    /// file is an empty history; lines that fail the checksum or the
    /// record grammar (torn tails, bit rot) are counted and skipped.
    pub fn replay(&self) -> JournalReplay {
        let mut replay = JournalReplay::default();
        let Ok(text) = fs::read_to_string(&self.path) else {
            return replay;
        };
        for line in text.split('\n') {
            if line.is_empty() {
                continue;
            }
            match parse_line(line) {
                Some(Record::Submitted(key)) => {
                    replay.submitted.insert(key);
                }
                Some(Record::Done(key)) => {
                    replay.completed.insert(key);
                }
                None => replay.torn_lines += 1,
            }
        }
        replay
    }
}

/// One parsed journal record.
enum Record {
    Submitted(RunKey),
    Done(RunKey),
}

fn line_check(body: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("uvm-journal-v1");
    h.write_str(body);
    h.finish() as u64
}

fn parse_line(line: &str) -> Option<Record> {
    let (check_hex, body) = line.split_once(' ')?;
    if check_hex.len() != 16 || u64::from_str_radix(check_hex, 16).ok()? != line_check(body) {
        return None;
    }
    let (tag, rest) = body.split_once(' ')?;
    match tag {
        "S" => {
            let key_hex = rest.split(' ').next()?;
            Some(Record::Submitted(RunKey::from_hex(key_hex)?))
        }
        "D" => Some(Record::Done(RunKey::from_hex(rest)?)),
        _ => None,
    }
}

/// The crash-recovery view of a journal: which runs finished, which
/// were cut down mid-flight.
#[derive(Debug, Default)]
pub struct JournalReplay {
    submitted: HashSet<RunKey>,
    completed: HashSet<RunKey>,
    /// Lines that failed the checksum or grammar and were skipped
    /// (typically 0 or 1 — the torn tail of the crashed append).
    pub torn_lines: usize,
}

impl JournalReplay {
    /// `true` when the journal shows `key` ran to completion and its
    /// result was durably stored.
    pub fn is_completed(&self, key: RunKey) -> bool {
        self.completed.contains(&key)
    }

    /// `true` when the journal shows `key` was started but never
    /// finished — the crash interrupted it.
    pub fn was_interrupted(&self, key: RunKey) -> bool {
        self.submitted.contains(&key) && !self.completed.contains(&key)
    }

    /// Number of distinct interrupted runs on record.
    pub fn interrupted_count(&self) -> usize {
        self.submitted
            .iter()
            .filter(|k| !self.completed.contains(k))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> Journal {
        let dir = std::env::temp_dir().join(format!(
            "uvm-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Journal::new(dir.join("sweep.journal"))
    }

    fn key(n: u128) -> RunKey {
        RunKey::from_hex(&format!("{n:032x}")).unwrap()
    }

    #[test]
    fn missing_journal_replays_empty() {
        let j = temp_journal("missing");
        let replay = j.replay();
        assert_eq!(replay.interrupted_count(), 0);
        assert_eq!(replay.torn_lines, 0);
        assert!(!replay.is_completed(key(1)));
    }

    #[test]
    fn submit_done_round_trips() {
        let j = temp_journal("roundtrip");
        j.record_submitted(key(1), "hotspot").unwrap();
        j.record_submitted(key(2), "bfs").unwrap();
        j.record_done(key(1)).unwrap();
        let replay = j.replay();
        assert!(replay.is_completed(key(1)));
        assert!(!replay.was_interrupted(key(1)));
        assert!(replay.was_interrupted(key(2)));
        assert_eq!(replay.interrupted_count(), 1);
        assert_eq!(replay.torn_lines, 0);
        let _ = fs::remove_dir_all(j.path().parent().unwrap());
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let j = temp_journal("torn");
        j.record_submitted(key(7), "gaussian").unwrap();
        j.record_done(key(7)).unwrap();
        // A SIGKILL mid-append leaves a partial final line.
        let mut text = fs::read_to_string(j.path()).unwrap();
        text.push_str("0123abc");
        fs::write(j.path(), text).unwrap();
        let replay = j.replay();
        assert!(replay.is_completed(key(7)));
        assert_eq!(replay.torn_lines, 1);
        let _ = fs::remove_dir_all(j.path().parent().unwrap());
    }

    #[test]
    fn bit_rot_fails_the_line_checksum() {
        let j = temp_journal("rot");
        j.record_submitted(key(3), "pathfinder").unwrap();
        let text = fs::read_to_string(j.path()).unwrap();
        // Flip one hex digit of the key inside the body.
        let rotted = text.replacen(
            "00000000000000000000000000000003",
            "00000000000000000000000000000004",
            1,
        );
        assert_ne!(rotted, text);
        fs::write(j.path(), rotted).unwrap();
        let replay = j.replay();
        assert_eq!(replay.torn_lines, 1);
        assert!(!replay.was_interrupted(key(3)));
        assert!(!replay.was_interrupted(key(4)));
        let _ = fs::remove_dir_all(j.path().parent().unwrap());
    }

    #[test]
    fn journal_survives_across_sessions() {
        let j = temp_journal("sessions");
        j.record_submitted(key(5), "nw").unwrap();
        // A second session opens the same path and keeps appending.
        let j2 = Journal::new(j.path());
        j2.record_done(key(5)).unwrap();
        assert!(j2.replay().is_completed(key(5)));
        let _ = fs::remove_dir_all(j.path().parent().unwrap());
    }
}
