//! Integration tests of the run-plan executor: worker-count
//! determinism, cross-figure deduplication, `RunKey` stability, the
//! `RunOptions` builder surface, and spill-based resumption.

use uvm_core::{EvictPolicy, FaultPlan, PrefetchPolicy};
use uvm_gpu::GpuConfig;
use uvm_sim::experiments::{
    eviction_isolation, policy_combinations, prefetcher_sweep, suite, Scale,
};
use uvm_sim::{Executor, RunKey, RunOptions};
use uvm_workloads::{LinearSweep, Workload};

/// A plan executed with 1 worker and with 8 workers must emit
/// byte-identical CSV output: results are keyed and ordered by
/// submission, never by completion.
#[test]
fn jobs_do_not_change_results() {
    let serial = prefetcher_sweep(&Executor::new(1), Scale::Smoke);
    let wide = prefetcher_sweep(&Executor::new(8), Scale::Smoke);
    assert_eq!(serial.time.to_csv(), wide.time.to_csv());
    assert_eq!(serial.bandwidth.to_csv(), wide.bandwidth.to_csv());
    assert_eq!(serial.faults.to_csv(), wide.faults.to_csv());
}

/// Figs. 3/4/5 are projections of one benchmark × prefetcher sweep:
/// requesting all three figures costs exactly one simulation per
/// unique `RunKey`, and re-running the figures costs zero more.
/// Figures that share individual cells (Fig. 11's LRU4K+none column
/// is Fig. 9's LRU column) reuse them across runners too.
#[test]
fn figures_share_deduplicated_runs() {
    let exec = Executor::new(2);
    let n = suite(Scale::Smoke).len();

    let _sweep = prefetcher_sweep(&exec, Scale::Smoke);
    let unique = n * PrefetchPolicy::ALL.len();
    assert_eq!(
        exec.runs_executed(),
        unique,
        "one simulation per unique key"
    );

    let _again = prefetcher_sweep(&exec, Scale::Smoke);
    assert_eq!(exec.runs_executed(), unique, "repeat costs nothing");
    assert!(exec.cache_hits() >= unique);

    // Fig. 9/10 adds its own 2 cells per benchmark...
    let _iso = eviction_isolation(&exec, Scale::Smoke);
    assert_eq!(exec.runs_executed(), unique + 2 * n);

    // ...and Fig. 11 reuses one of them (LRU4K+none == Fig. 9's LRU
    // column), so only 3 of its 4 columns simulate.
    let _combos = policy_combinations(&exec, Scale::Smoke);
    assert_eq!(exec.runs_executed(), unique + 2 * n + 3 * n);
}

/// Same workload + same options → same key; changing any single
/// `RunOptions` field or the workload parameters changes the key.
#[test]
fn run_key_is_stable_and_field_sensitive() {
    let w = LinearSweep {
        pages: 64,
        repeats: 1,
        thread_blocks: 2,
    };
    let base = RunOptions::default();
    assert_eq!(RunKey::new(&w, &base), RunKey::new(&w, &base.clone()));

    let mutations: Vec<(&str, RunOptions)> = vec![
        ("prefetch", base.clone().with_prefetch(PrefetchPolicy::None)),
        ("evict", base.clone().with_evict(EvictPolicy::RandomPage)),
        ("memory_frac", base.clone().with_memory_frac(1.10)),
        (
            "disable_prefetch_on_oversubscription",
            base.clone().with_disable_prefetch_on_oversubscription(true),
        ),
        ("free_buffer_frac", base.clone().with_free_buffer_frac(0.05)),
        ("reserve_frac", base.clone().with_reserve_frac(0.10)),
        (
            "gpu",
            base.clone().with_gpu(GpuConfig {
                num_sms: 56,
                ..GpuConfig::default()
            }),
        ),
        ("trace", base.clone().with_trace(true)),
        ("fault_lanes", base.clone().with_fault_lanes(2)),
        (
            "writeback_dirty_only",
            base.clone().with_writeback_dirty_only(true),
        ),
        ("rng_seed", base.clone().with_rng_seed(7)),
        (
            "fault_plan",
            base.clone().with_fault_plan(FaultPlan::pcie_flaky()),
        ),
        (
            "fault_plan seed",
            base.clone()
                .with_fault_plan(FaultPlan::pcie_flaky().with_seed(9)),
        ),
    ];

    let base_key = RunKey::new(&w, &base);
    let mut keys = vec![("base", base_key)];
    for (field, opts) in &mutations {
        keys.push((field, RunKey::new(&w, opts)));
    }
    for (i, (fa, ka)) in keys.iter().enumerate() {
        for (fb, kb) in &keys[i + 1..] {
            assert_ne!(ka, kb, "{fa} vs {fb} must produce distinct keys");
        }
    }

    // Workload identity is part of the key.
    let other = LinearSweep {
        pages: 65,
        repeats: 1,
        thread_blocks: 2,
    };
    assert_ne!(base_key, RunKey::new(&other, &base));
    assert_ne!(w.signature(), other.signature());
}

/// Every `with_*` builder sets exactly its field.
#[test]
fn builders_cover_every_field() {
    let d = RunOptions::default();
    let gpu = GpuConfig {
        num_sms: 56,
        ..GpuConfig::default()
    };
    let o = RunOptions::default()
        .with_prefetch(PrefetchPolicy::Random)
        .with_evict(EvictPolicy::SequentialLocal)
        .with_memory_frac(1.25)
        .with_disable_prefetch_on_oversubscription(true)
        .with_free_buffer_frac(0.05)
        .with_reserve_frac(0.20)
        .with_gpu(gpu.clone())
        .with_trace(true)
        .with_fault_lanes(4)
        .with_writeback_dirty_only(true)
        .with_rng_seed(42)
        .with_fault_plan(FaultPlan::chaos());
    assert_eq!(o.prefetch, PrefetchPolicy::Random.into());
    assert_eq!(o.evict, EvictPolicy::SequentialLocal.into());
    assert_eq!(o.memory_frac, Some(1.25));
    assert!(o.disable_prefetch_on_oversubscription);
    assert_eq!(o.free_buffer_frac, 0.05);
    assert_eq!(o.reserve_frac, 0.20);
    assert_eq!(format!("{:?}", o.gpu), format!("{gpu:?}"));
    assert!(o.trace);
    assert_eq!(o.fault_lanes, Some(4));
    assert!(o.writeback_dirty_only);
    assert_eq!(o.rng_seed, 42);
    assert_eq!(o.fault_plan, FaultPlan::chaos());

    assert_ne!(format!("{:?}", d.gpu), format!("{:?}", o.gpu));
    assert!(!d.trace && d.fault_lanes.is_none());
    assert!(d.fault_plan.is_none());
}

/// A fresh executor pointed at a populated spill directory resumes
/// from disk: zero simulations, identical tables.
#[test]
fn spill_directory_resumes_across_executors() {
    let dir = std::env::temp_dir().join(format!("uvm-executor-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let w = LinearSweep {
        pages: 96,
        repeats: 2,
        thread_blocks: 3,
    };
    let opts = |p| RunOptions::default().with_prefetch(p);

    let first = Executor::new(2).with_spill_dir(&dir);
    let mut plan = first.plan();
    for p in PrefetchPolicy::ALL {
        plan.submit(&w, opts(p));
    }
    let a = plan.execute();
    assert_eq!(first.runs_executed(), PrefetchPolicy::ALL.len());

    let second = Executor::new(2).with_spill_dir(&dir);
    let mut plan = second.plan();
    for p in PrefetchPolicy::ALL {
        plan.submit(&w, opts(p));
    }
    let b = plan.execute();
    assert_eq!(second.runs_executed(), 0, "everything loads from disk");
    assert_eq!(second.cache_hits(), PrefetchPolicy::ALL.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.total_time, y.total_time);
        assert_eq!(x.far_faults, y.far_faults);
        assert_eq!(x.pages_prefetched, y.pages_prefetched);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
