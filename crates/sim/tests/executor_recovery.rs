//! Crash-safety tests of the hardened executor: a panicking or hung
//! run becomes a typed [`RunError`] while its siblings complete, and
//! corrupt spill-cache entries are quarantined and recomputed instead
//! of misread or fatal.

use std::time::Duration;

use uvm_gpu::KernelSpec;
use uvm_sim::{Executor, RunError, RunKey, RunOptions};
use uvm_types::{Bytes, VirtAddr};
use uvm_workloads::{LinearSweep, Workload};

/// A workload that panics while building its kernels.
#[derive(Clone, Debug)]
struct PanicWorkload;

impl Workload for PanicWorkload {
    fn name(&self) -> &'static str {
        "panics"
    }

    fn build(&self, _malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        panic!("induced failure for testing");
    }
}

/// A workload that hangs (well past any test timeout) in `build`.
#[derive(Clone, Debug)]
struct SlowWorkload;

impl Workload for SlowWorkload {
    fn name(&self) -> &'static str {
        "hangs"
    }

    fn build(&self, _malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        std::thread::sleep(Duration::from_secs(3));
        Vec::new()
    }
}

fn sweep() -> LinearSweep {
    LinearSweep {
        pages: 64,
        repeats: 1,
        thread_blocks: 2,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("uvm-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn panicking_run_reports_error_while_siblings_complete() {
    let exec = Executor::new(2);
    let good = sweep();
    let mut plan = exec.plan();
    plan.submit(&good, RunOptions::default());
    plan.submit(&PanicWorkload, RunOptions::default());
    plan.submit(&good, RunOptions::default().with_rng_seed(9));
    let report = plan.try_execute();

    assert!(!report.is_complete());
    assert!(report.results[0].is_some(), "sibling before the panic");
    assert!(report.results[1].is_none(), "the panicking run");
    assert!(report.results[2].is_some(), "sibling after the panic");
    assert_eq!(report.failures.len(), 1);
    match &report.failures[0] {
        RunError::Panicked {
            name,
            message,
            attempts,
            ..
        } => {
            assert_eq!(name, "panics");
            assert!(message.contains("induced failure"), "payload: {message}");
            assert_eq!(*attempts, 1);
        }
        other => panic!("expected a panic error, got {other}"),
    }
    assert_eq!(exec.runs_executed(), 2, "failed runs are not counted");

    let report_text = exec.failure_report().expect("failures produce a report");
    assert!(report_text.contains("panics"));
    assert!(report_text.contains("1 failed run(s)"));
}

#[test]
fn retry_budget_is_spent_before_giving_up() {
    let exec = Executor::new(1).with_run_retries(2);
    let mut plan = exec.plan();
    plan.submit(&PanicWorkload, RunOptions::default());
    let report = plan.try_execute();
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].attempts(), 3, "1 try + 2 retries");
}

#[test]
fn timed_out_run_reports_error_while_siblings_complete() {
    let limit = Duration::from_millis(100);
    let exec = Executor::new(2).with_run_timeout(limit);
    let good = sweep();
    let mut plan = exec.plan();
    plan.submit(&SlowWorkload, RunOptions::default());
    plan.submit(&good, RunOptions::default());
    let report = plan.try_execute();

    assert!(report.results[0].is_none());
    assert!(report.results[1].is_some(), "the quick sibling completes");
    assert_eq!(report.failures.len(), 1);
    match &report.failures[0] {
        RunError::TimedOut { name, timeout, .. } => {
            assert_eq!(name, "hangs");
            assert_eq!(*timeout, limit);
        }
        other => panic!("expected a timeout, got {other}"),
    }
}

#[test]
#[should_panic(expected = "experiment sweep failed")]
fn legacy_execute_panics_with_an_aggregated_message() {
    let exec = Executor::new(1);
    let mut plan = exec.plan();
    plan.submit(&PanicWorkload, RunOptions::default());
    let _ = plan.execute();
}

#[test]
fn truncated_spill_entry_is_quarantined_and_recomputed() {
    let dir = temp_dir("truncate");
    let w = sweep();
    let opts = RunOptions::default();
    let key = RunKey::new(&w, &opts);
    let path = dir.join(format!("{}.json", key.to_hex()));

    let first = Executor::new(1).with_spill_dir(&dir);
    let a = first.run_one(&w, opts.clone());
    assert!(path.exists());

    // A crash mid-write (without the atomic rename) leaves a prefix.
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();

    let second = Executor::new(1).with_spill_dir(&dir);
    let b = second.run_one(&w, opts.clone());
    assert_eq!(second.quarantined_entries(), 1);
    assert_eq!(second.runs_executed(), 1, "the run is recomputed");
    assert_eq!(second.cache_hits(), 0);
    assert!(
        dir.join(format!("{}.json.corrupt", key.to_hex())).exists(),
        "the rotten entry is kept for post-mortem"
    );
    assert!(path.exists(), "the recomputed result is re-spilled");
    assert_eq!(a.far_faults, b.far_faults);
    assert_eq!(a.total_time, b.total_time);

    let report = second.failure_report().expect("quarantine is reported");
    assert!(report.contains("1 quarantined spill entry"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_spill_entry_fails_the_checksum() {
    let dir = temp_dir("bitflip");
    let w = sweep();
    let opts = RunOptions::default();
    let key = RunKey::new(&w, &opts);
    let path = dir.join(format!("{}.json", key.to_hex()));

    let first = Executor::new(1).with_spill_dir(&dir);
    let a = first.run_one(&w, opts.clone());

    // Flip one character of the body; the entry stays valid JSON, so
    // only the checksum can catch it.
    let full = std::fs::read_to_string(&path).unwrap();
    let flipped = full.replacen("\"far_faults\":", "\"far_faultz\":", 1);
    assert_ne!(flipped, full);
    std::fs::write(&path, flipped).unwrap();

    let second = Executor::new(1).with_spill_dir(&dir);
    let b = second.run_one(&w, opts);
    assert_eq!(second.quarantined_entries(), 1);
    assert_eq!(second.runs_executed(), 1);
    assert_eq!(a.far_faults, b.far_faults);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panic_timeout_and_corruption_in_one_sweep_still_report() {
    // The acceptance scenario: one sweep containing a panicking run, a
    // hung run, and a corrupted cache entry completes with a failure
    // report instead of aborting.
    let dir = temp_dir("acceptance");
    let good = sweep();
    let opts = RunOptions::default();
    let key = RunKey::new(&good, &opts);

    // Seed the cache, then corrupt the entry.
    Executor::new(1)
        .with_spill_dir(&dir)
        .run_one(&good, opts.clone());
    let path = dir.join(format!("{}.json", key.to_hex()));
    std::fs::write(&path, "uvmspill v2 crc=0\n{}").unwrap();

    let exec = Executor::new(2)
        .with_spill_dir(&dir)
        .with_run_timeout(Duration::from_millis(150));
    let mut plan = exec.plan();
    plan.submit(&PanicWorkload, RunOptions::default());
    plan.submit(&SlowWorkload, RunOptions::default());
    plan.submit(&good, opts);
    let report = plan.try_execute();

    assert_eq!(report.failures.len(), 2);
    assert!(report.results[2].is_some(), "the healthy run completes");
    assert_eq!(exec.quarantined_entries(), 1);
    let text = exec.failure_report().expect("everything is reported");
    assert!(text.contains("2 failed run(s)"));
    assert!(text.contains("1 quarantined spill entry"));
    assert!(text.contains("panics"));
    assert!(text.contains("hangs"));

    let _ = std::fs::remove_dir_all(&dir);
}
