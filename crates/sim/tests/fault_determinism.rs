//! Property tests of the deterministic fault-injection layer: a fault
//! plan is part of the run's identity, so the same seed must
//! reproduce the same result bit for bit — across repeated runs,
//! across worker counts — and an inert plan must change nothing.

use uvm_core::{EvictPolicy, FaultPlan, PrefetchPolicy};
use uvm_sim::{run_workload, Executor, RunOptions, RunResult};
use uvm_workloads::{Hotspot, LinearSweep};

fn oversubscribed(plan: FaultPlan) -> RunOptions {
    RunOptions::default()
        .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
        .with_evict(EvictPolicy::LruPage)
        .with_memory_frac(1.10)
        .with_fault_plan(plan)
}

fn hotspot() -> Hotspot {
    Hotspot {
        rows: 512,
        iterations: 3,
        rows_per_block: 16,
    }
}

fn sweep() -> LinearSweep {
    LinearSweep {
        pages: 256,
        repeats: 2,
        thread_blocks: 4,
    }
}

/// The `Debug` rendering covers every `RunResult` field, so equal
/// renderings mean byte-identical stats.
fn fingerprint(r: &RunResult) -> String {
    format!("{r:?}")
}

#[test]
fn same_seed_reproduces_byte_identical_stats() {
    let plan = FaultPlan::chaos().with_seed(0xD00D);
    let a = run_workload(&hotspot(), oversubscribed(plan));
    let b = run_workload(&hotspot(), oversubscribed(plan));
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(
        a.transfer_retries > 0
            || a.migration_retries > 0
            || a.emergency_evictions > 0
            || a.fault_jitter_cycles > 0,
        "chaos on an oversubscribed run must inject something"
    );

    // A different seed draws a different fault schedule.
    let c = run_workload(&hotspot(), oversubscribed(plan.with_seed(0xBEEF)));
    assert_ne!(fingerprint(&a), fingerprint(&c));
}

#[test]
fn inert_plan_is_indistinguishable_from_no_plan() {
    // Zero-probability plans draw no randomness, so the seed is
    // irrelevant and the result matches a run that never heard of
    // fault injection.
    let plain = run_workload(&sweep(), oversubscribed(FaultPlan::none()));
    let seeded = run_workload(&sweep(), oversubscribed(FaultPlan::none().with_seed(123)));
    assert_eq!(fingerprint(&plain), fingerprint(&seeded));
    assert_eq!(plain.transfer_retries, 0);
    assert_eq!(plain.migration_retries, 0);
    assert_eq!(plain.emergency_evictions, 0);
    assert_eq!(plain.fault_jitter_cycles, 0);

    let untouched = {
        let opts = RunOptions::default()
            .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
            .with_evict(EvictPolicy::LruPage)
            .with_memory_frac(1.10);
        run_workload(&sweep(), opts)
    };
    assert_eq!(fingerprint(&plain), fingerprint(&untouched));
}

#[test]
fn worker_count_does_not_change_faulty_results() {
    let plan = FaultPlan::chaos();
    let run_fleet = |jobs: usize| -> Vec<String> {
        let exec = Executor::new(jobs);
        let w = sweep();
        let mut p = exec.plan();
        for seed in 0..6u64 {
            p.submit(&w, oversubscribed(plan.with_seed(seed)));
        }
        p.execute().iter().map(|r| fingerprint(r)).collect()
    };
    assert_eq!(run_fleet(1), run_fleet(8));
}

#[test]
fn every_profile_is_deterministic_per_seed() {
    for name in FaultPlan::PROFILE_NAMES {
        let plan = FaultPlan::from_name(name).unwrap().with_seed(0x5eed);
        let a = run_workload(&sweep(), oversubscribed(plan));
        let b = run_workload(&sweep(), oversubscribed(plan));
        assert_eq!(fingerprint(&a), fingerprint(&b), "profile {name}");
    }
}
