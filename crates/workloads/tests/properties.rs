//! Randomized-property tests over the benchmark generators: for any
//! parameterisation, the generated kernels only touch allocated pages,
//! are deterministic, and preserve each benchmark's structural
//! signature. Driven by seeded `SmallRng` case loops.

use std::collections::HashSet;

use uvm_gpu::KernelSpec;
use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{Bytes, VirtAddr};
use uvm_workloads::{
    Backprop, Bfs, Gaussian, Hotspot, LinearSweep, NeedlemanWunsch, Pathfinder, Srad, Workload,
};

const CASES: usize = 16;

/// Builds `w` against a dummy 2 MB-aligned bump allocator, returning
/// the kernels and the set of allocated page ranges.
fn build(w: &dyn Workload) -> (Vec<KernelSpec>, Vec<(u64, u64)>) {
    let mut next = 0u64;
    let mut ranges = Vec::new();
    let mut malloc = |size: Bytes| {
        let base = VirtAddr::new(next);
        let first_page = next / 4096;
        // Pages are migratable up to the rounded tree extent; for the
        // purpose of this test the requested extent suffices because
        // generators must only touch requested pages.
        ranges.push((first_page, first_page + size.pages_ceil()));
        next += size.bytes().div_ceil(2 << 20) * (2 << 20);
        base
    };
    (w.build(&mut malloc), ranges)
}

fn all_pages(kernels: Vec<KernelSpec>) -> Vec<u64> {
    kernels
        .into_iter()
        .flat_map(|k| k.into_blocks())
        .flat_map(|b| b.into_accesses())
        .map(|a| a.page().index())
        .collect()
}

fn assert_within(pages: &[u64], ranges: &[(u64, u64)]) {
    for &p in pages {
        assert!(
            ranges.iter().any(|&(lo, hi)| p >= lo && p < hi),
            "page {p} outside every allocation"
        );
    }
}

#[test]
fn hotspot_touches_only_its_arrays() {
    let mut rng = SmallRng::seed_from_u64(0x401);
    for _ in 0..CASES {
        let rows_pow = rng.gen_range(4u32..9);
        let iters = rng.gen_range(1u64..4);
        let w = Hotspot {
            rows: 1 << rows_pow,
            iterations: iters,
            rows_per_block: 16,
        };
        let (kernels, ranges) = build(&w);
        assert_eq!(kernels.len() as u64, iters);
        let pages = all_pages(kernels);
        assert_within(&pages, &ranges);
        // Every iteration touches the whole grid.
        let unique: HashSet<u64> = pages.iter().copied().collect();
        assert!(unique.len() as u64 >= 2 * (1 << rows_pow));
    }
}

#[test]
fn nw_launch_count_and_bounds() {
    let mut rng = SmallRng::seed_from_u64(0x402);
    for _ in 0..CASES {
        let rows_pow = rng.gen_range(5u32..11);
        let rows = 1u64 << rows_pow;
        let w = NeedlemanWunsch { rows, tile: 16 };
        let (kernels, ranges) = build(&w);
        assert_eq!(kernels.len() as u64, 2 * (rows / 16) - 1);
        // Widest diagonal has rows/16 blocks.
        let widest = kernels.iter().map(KernelSpec::num_blocks).max().unwrap();
        assert_eq!(widest as u64, rows / 16);
        assert_within(&all_pages(kernels), &ranges);
    }
}

#[test]
fn bfs_is_deterministic_and_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x403);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let levels = rng.gen_range(1u64..4);
        let mk = || Bfs {
            node_pages: 64,
            edge_pages: 128,
            mask_pages: 16,
            cost_pages: 64,
            levels,
            thread_blocks: 4,
            expansions_per_block: 8,
            seed,
        };
        let (k1, ranges) = build(&mk());
        let (k2, _) = build(&mk());
        let p1 = all_pages(k1);
        let p2 = all_pages(k2);
        assert_eq!(&p1, &p2, "same seed, same trace");
        assert_within(&p1, &ranges);
    }
}

#[test]
fn gaussian_steps_shrink() {
    let mut rng = SmallRng::seed_from_u64(0x404);
    for _ in 0..CASES {
        let rows_pow = rng.gen_range(7u32..11);
        let rows = 1u64 << rows_pow;
        let w = Gaussian {
            rows,
            rows_per_step: 64,
            rows_per_block: 16,
        };
        let (kernels, ranges) = build(&w);
        let counts: Vec<usize> = kernels.iter().map(|k| k.num_blocks()).collect();
        for pair in counts.windows(2) {
            assert!(pair[1] <= pair[0], "active region must shrink");
        }
        assert_within(&all_pages(kernels), &ranges);
    }
}

#[test]
fn pathfinder_and_backprop_stream_within_bounds() {
    let mut rng = SmallRng::seed_from_u64(0x405);
    for _ in 0..CASES {
        let rows = rng.gen_range(1u64..6);
        let row_pages = rng.gen_range(16u64..128);
        let w = Pathfinder {
            rows,
            row_pages,
            thread_blocks: 4,
        };
        let (kernels, ranges) = build(&w);
        assert_eq!(kernels.len() as u64, rows);
        assert_within(&all_pages(kernels), &ranges);

        let w = Backprop {
            input_pages: row_pages,
            weights_in_pages: row_pages * 2,
            weights_out_pages: row_pages * 2,
            thread_blocks: 4,
        };
        let (kernels, ranges) = build(&w);
        let pages = all_pages(kernels);
        assert_within(&pages, &ranges);
        // Streaming: no page repeats.
        let unique: HashSet<u64> = pages.iter().copied().collect();
        assert_eq!(unique.len(), pages.len());
    }
}

#[test]
fn srad_alternates_kernels() {
    let mut rng = SmallRng::seed_from_u64(0x406);
    for _ in 0..CASES {
        let rows_pow = rng.gen_range(5u32..9);
        let iters = rng.gen_range(1u64..4);
        let w = Srad {
            rows: 1 << rows_pow,
            iterations: iters,
            rows_per_block: 16,
        };
        let (kernels, ranges) = build(&w);
        assert_eq!(kernels.len() as u64, 2 * iters);
        for (i, k) in kernels.iter().enumerate() {
            let expect = if i % 2 == 0 { "srad_k1" } else { "srad_k2" };
            assert!(k.name().starts_with(expect));
        }
        assert_within(&all_pages(kernels), &ranges);
    }
}

#[test]
fn linear_sweep_covers_exactly() {
    let mut rng = SmallRng::seed_from_u64(0x407);
    for _ in 0..CASES {
        let pages = rng.gen_range(1u64..512);
        let repeats = rng.gen_range(1u64..4);
        let w = LinearSweep {
            pages,
            repeats,
            thread_blocks: 3,
        };
        let (kernels, ranges) = build(&w);
        let touched = all_pages(kernels);
        assert_eq!(touched.len() as u64, pages * repeats);
        assert_within(&touched, &ranges);
    }
}
