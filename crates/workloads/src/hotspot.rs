//! `hotspot` (Rodinia): iterative thermal-simulation stencil.
//!
//! The paper characterises hotspot as an iterative kernel with dense
//! sequential accesses and full data reuse across launches: every
//! iteration re-reads the whole temperature and power grids. Under
//! over-subscription with LRU this is the classic pathological
//! repetitive-linear-scan pattern (Sec. 5.3), which is why hotspot
//! benefits from random eviction (Fig. 9) and from LRU-top reservation
//! (Fig. 14).

use uvm_gpu::{Access, KernelSpec, ThreadBlockSpec};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};

use crate::{page_addr, Workload};

/// The hotspot workload. Default footprint = 12 MB.
#[derive(Clone, Debug)]
pub struct Hotspot {
    /// Grid rows; one 4 KB page per row (1024 f32 columns).
    pub rows: u64,
    /// Stencil iterations (kernel launches).
    pub iterations: u64,
    /// Rows per thread block.
    pub rows_per_block: u64,
}

impl Default for Hotspot {
    fn default() -> Self {
        Hotspot {
            rows: 1024, // 4 MB per array
            iterations: 10,
            rows_per_block: 16,
        }
    }
}

impl Workload for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let array = PAGE_SIZE * self.rows;
        let temp_a = malloc(array);
        let temp_b = malloc(array);
        let power = malloc(array);

        let rows = self.rows;
        let mut kernels = Vec::with_capacity(self.iterations as usize);
        for it in 0..self.iterations {
            // Ping-pong temperature arrays between iterations.
            let (src, dst) = if it % 2 == 0 {
                (temp_a, temp_b)
            } else {
                (temp_b, temp_a)
            };
            let mut k = KernelSpec::new(format!("hotspot_iter{it}"));
            let mut row = 0;
            while row < rows {
                let hi = (row + self.rows_per_block).min(rows);
                let accesses = (row..hi).flat_map(move |r| {
                    let up = r.saturating_sub(1);
                    let down = (r + 1).min(rows - 1);
                    [
                        Access::read(page_addr(power, r)),
                        Access::read(page_addr(src, up)),
                        Access::read(page_addr(src, r)),
                        Access::read(page_addr(src, down)),
                        Access::write(page_addr(dst, r)),
                    ]
                });
                k.push_block(ThreadBlockSpec::from_accesses(accesses));
                row = hi;
            }
            kernels.push(k);
        }
        kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::build_dummy;
    use std::collections::HashMap;

    #[test]
    fn iteration_count_and_footprint() {
        let (kernels, fp) = build_dummy(&Hotspot::default());
        assert_eq!(kernels.len(), 10);
        assert_eq!(fp, Bytes::mib(12));
    }

    #[test]
    fn whole_grid_reused_every_iteration() {
        let h = Hotspot {
            rows: 64,
            iterations: 3,
            rows_per_block: 16,
        };
        let (kernels, _) = build_dummy(&h);
        let mut per_kernel_pages: Vec<std::collections::HashSet<u64>> = Vec::new();
        for k in kernels {
            let mut pages = std::collections::HashSet::new();
            for b in k.into_blocks() {
                for a in b.into_accesses() {
                    pages.insert(a.page().index());
                }
            }
            per_kernel_pages.push(pages);
        }
        // Power array pages appear in every iteration.
        let power_first = 2 * (Bytes::mib(2).bytes() / PAGE_SIZE.bytes());
        for pages in &per_kernel_pages {
            assert!(pages.contains(&power_first));
        }
    }

    #[test]
    fn stencil_reads_neighbours() {
        let h = Hotspot {
            rows: 32,
            iterations: 1,
            rows_per_block: 32,
        };
        let (kernels, _) = build_dummy(&h);
        let mut reads: HashMap<u64, u64> = HashMap::new();
        for k in kernels {
            for b in k.into_blocks() {
                for a in b.into_accesses() {
                    if !a.write {
                        *reads.entry(a.page().index()).or_insert(0) += 1;
                    }
                }
            }
        }
        // An interior temperature row is read three times (as up,
        // center, down of its neighbours). temp_a starts at page 0.
        assert_eq!(reads.get(&5).copied(), Some(3));
    }
}
