//! `nw` (Rodinia): Needleman-Wunsch sequence alignment.
//!
//! The paper examines nw in detail (Fig. 12): it launches one kernel
//! per anti-diagonal of 16x16 tiles — 127 launches for a 64x64 tile
//! grid — and each launch touches a set of pages *spaced far apart in
//! the virtual address space* (one page per matrix row, across both
//! the score matrix and the reference matrix), with the same pages
//! re-touched by neighbouring diagonals. This "sparse yet localized
//! and repeated" pattern is why nw prefers the 64 KB granularity of
//! SLe over the larger TBNe chunks (Sec. 7.2) and degrades
//! super-linearly with over-subscription (Sec. 7.3).

use uvm_gpu::{Access, KernelSpec, ThreadBlockSpec};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};

use crate::{page_addr, Workload};

/// The Needleman-Wunsch workload. Default footprint = 8 MB,
/// 127 kernel launches.
#[derive(Clone, Debug)]
pub struct NeedlemanWunsch {
    /// Matrix rows; one 4 KB page per row (1024 i32 columns).
    pub rows: u64,
    /// Tile edge in rows; the tile grid is `(rows/tile)^2`.
    pub tile: u64,
}

impl Default for NeedlemanWunsch {
    fn default() -> Self {
        NeedlemanWunsch {
            rows: 1024, // 4 MB per matrix (score + reference)
            tile: 16,
        }
    }
}

impl NeedlemanWunsch {
    /// Tiles per dimension.
    fn grid(&self) -> u64 {
        self.rows / self.tile
    }

    /// Total kernel launches: `2 * grid - 1` anti-diagonals
    /// (127 for the default 64x64 grid, matching the paper).
    pub fn launches(&self) -> u64 {
        2 * self.grid() - 1
    }
}

impl Workload for NeedlemanWunsch {
    fn name(&self) -> &'static str {
        "nw"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let matrix = PAGE_SIZE * self.rows;
        let score = malloc(matrix);
        let reference = malloc(matrix);
        let grid = self.grid();
        let tile = self.tile;

        let mut kernels = Vec::with_capacity(self.launches() as usize);
        for diag in 0..self.launches() {
            // Tile rows participating in this anti-diagonal: block
            // (i, j) is active iff i + j == diag.
            let i_lo = diag.saturating_sub(grid - 1);
            let i_hi = diag.min(grid - 1);
            let mut k = KernelSpec::new(format!("nw_diag{diag}"));
            for i in i_lo..=i_hi {
                let row_lo = i * tile;
                let accesses = (row_lo..row_lo + tile).flat_map(move |r| {
                    [
                        Access::read(page_addr(reference, r)),
                        Access::read(page_addr(score, r)),
                        Access::write(page_addr(score, r)),
                    ]
                });
                k.push_block(ThreadBlockSpec::from_accesses(accesses));
            }
            kernels.push(k);
        }
        kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::build_dummy;

    #[test]
    fn has_127_launches_at_default_size() {
        let nw = NeedlemanWunsch::default();
        assert_eq!(nw.launches(), 127);
        let (kernels, fp) = build_dummy(&nw);
        assert_eq!(kernels.len(), 127);
        assert_eq!(fp, Bytes::mib(8));
    }

    #[test]
    fn diagonal_width_grows_then_shrinks() {
        let nw = NeedlemanWunsch { rows: 64, tile: 16 }; // 4x4 grid, 7 diagonals
        let (kernels, _) = build_dummy(&nw);
        let widths: Vec<usize> = kernels.iter().map(|k| k.num_blocks()).collect();
        assert_eq!(widths, vec![1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn middle_diagonal_touches_pages_spaced_far_apart() {
        let nw = NeedlemanWunsch::default();
        let (kernels, _) = build_dummy(&nw);
        // Diagonal 63 is the widest: 64 blocks, every 16th row band.
        let k = kernels.into_iter().nth(63).unwrap();
        let mut pages: Vec<u64> = k
            .into_blocks()
            .into_iter()
            .flat_map(|b| b.into_accesses())
            .map(|a| a.page().index())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        // Touches the full 4 MB score matrix (1024 pages) and the
        // reference matrix: pages span two 2 MB-aligned allocations.
        assert!(pages.len() >= 2048);
        let span = pages.last().unwrap() - pages.first().unwrap();
        assert!(span > 1024, "pages must span far apart (span {span})");
    }

    #[test]
    fn adjacent_diagonals_reuse_pages() {
        let nw = NeedlemanWunsch::default();
        let (kernels, _) = build_dummy(&nw);
        let page_set = |k: KernelSpec| -> std::collections::HashSet<u64> {
            k.into_blocks()
                .into_iter()
                .flat_map(|b| b.into_accesses())
                .map(|a| a.page().index())
                .collect()
        };
        let mut iter = kernels.into_iter().skip(60);
        let d60 = page_set(iter.next().unwrap());
        let d61 = page_set(iter.next().unwrap());
        let overlap = d60.intersection(&d61).count();
        assert!(
            overlap * 10 >= d60.len() * 9,
            "adjacent diagonals share almost all pages ({overlap}/{})",
            d60.len()
        );
    }
}
