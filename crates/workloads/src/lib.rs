//! Synthetic, access-pattern-faithful versions of the seven benchmarks
//! the paper evaluates (Sec. 6.2, from Rodinia and PolyBench).
//!
//! The paper characterises each benchmark purely by its page-access
//! behaviour — streaming, random, iterative stencil with reuse,
//! diagonal wavefront, and so on — and explains every result in those
//! terms (Sec. 7). Each module here reproduces one benchmark's
//! published pattern class at a paper-scale footprint (4–38.5 MB,
//! average ≈ 15.5 MB), with the same grid/thread-block structure and
//! iterative kernel-launch shape:
//!
//! | Benchmark   | Pattern (paper's description)                                    |
//! |-------------|------------------------------------------------------------------|
//! | `backprop`  | streaming scan, no reuse across iterations                        |
//! | `pathfinder`| streaming row-by-row wavefront, no reuse                          |
//! | `bfs`       | random page accesses, reuse across frontier iterations            |
//! | `hotspot`   | iterative dense stencil, whole working set reused every iteration |
//! | `srad`      | iterative multi-array stencil, heavy reuse                        |
//! | `gaussian`  | shrinking active region, strong early reuse                       |
//! | `nw`        | sparse-but-localized diagonal wavefront, 127 iterations           |
//!
//! # Examples
//!
//! ```
//! use uvm_workloads::{standard_suite, Workload};
//! use uvm_types::Bytes;
//!
//! let suite = standard_suite();
//! assert_eq!(suite.len(), 7);
//! let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
//! assert!(names.contains(&"nw"));
//! ```

mod backprop;
mod bfs;
mod gaussian;
mod hotspot;
mod micro;
mod nw;
mod pathfinder;
mod srad;

pub use backprop::Backprop;
pub use bfs::Bfs;
pub use gaussian::Gaussian;
pub use hotspot::Hotspot;
pub use micro::{LinearSweep, StridedTouch};
pub use nw::NeedlemanWunsch;
pub use pathfinder::Pathfinder;
pub use srad::Srad;

use uvm_gpu::KernelSpec;
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};

/// A benchmark that can be instantiated against a UVM allocator.
///
/// `build` registers the benchmark's managed allocations through
/// `malloc` (the simulation harness passes a closure over
/// [`uvm_core::Gmmu::malloc_managed`]) and returns the sequence of
/// kernel launches to execute.
///
/// Workloads are `Debug + Send + Sync` so the experiment executor can
/// (a) derive a canonical identity for run deduplication and caching,
/// and (b) simulate them from a worker pool. They are also clonable as
/// trait objects (via [`WorkloadClone`]) so the executor can move an
/// owned copy into a watchdog thread for timeout-isolated runs.
pub trait Workload: std::fmt::Debug + Send + Sync + WorkloadClone {
    /// Benchmark name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Allocates the working set and produces the kernel launches.
    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec>;

    /// A canonical identity string covering every parameter that
    /// changes the generated access stream. Two workloads with equal
    /// signatures must build identical kernels; the default `Debug`
    /// rendering satisfies this for plain parameter structs.
    fn signature(&self) -> String {
        format!("{self:?}")
    }
}

/// Object-safe cloning for boxed workloads. Blanket-implemented for
/// every `Clone` workload; parameter structs get it for free from
/// `#[derive(Clone)]`.
pub trait WorkloadClone {
    /// Clones `self` into a fresh boxed trait object.
    fn clone_box(&self) -> Box<dyn Workload>;
}

impl<T: Workload + Clone + 'static> WorkloadClone for T {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Workload> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The paper's seven-benchmark suite at default (paper-scale) sizes.
pub fn standard_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Backprop::default()),
        Box::new(Bfs::default()),
        Box::new(Gaussian::default()),
        Box::new(Hotspot::default()),
        Box::new(NeedlemanWunsch::default()),
        Box::new(Pathfinder::default()),
        Box::new(Srad::default()),
    ]
}

/// Address of 4 KB page number `page` within an allocation at `base`.
pub(crate) fn page_addr(base: VirtAddr, page: u64) -> VirtAddr {
    base.offset(PAGE_SIZE * page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Builds a workload against a dummy bump allocator and returns
    /// (kernels, footprint). Shared by the per-benchmark test modules.
    pub(crate) fn build_dummy(w: &dyn Workload) -> (Vec<KernelSpec>, Bytes) {
        let mut next = 0u64;
        let mut total = Bytes::ZERO;
        let mut malloc = |size: Bytes| {
            // 2 MB-aligned bump allocation, as the real registry does.
            let base = VirtAddr::new(next);
            let rounded = size.bytes().div_ceil(2 * 1024 * 1024) * 2 * 1024 * 1024;
            next += rounded;
            total += size;
            base
        };
        (w.build(&mut malloc), total)
    }

    #[test]
    fn suite_has_seven_distinct_benchmarks() {
        let suite = standard_suite();
        let names: HashSet<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn footprints_are_paper_scale() {
        // Paper Sec. 6.2: 4 MB to 38.5 MB, average ~15.5 MB.
        let suite = standard_suite();
        let mut sum = 0.0;
        for w in &suite {
            let (_, fp) = build_dummy(w.as_ref());
            let mib = fp.bytes() as f64 / (1024.0 * 1024.0);
            assert!((4.0..=38.5).contains(&mib), "{}: {mib} MiB", w.name());
            sum += mib;
        }
        let avg = sum / 7.0;
        assert!((8.0..=24.0).contains(&avg), "average {avg} MiB");
    }

    #[test]
    fn every_benchmark_produces_kernels_and_accesses() {
        for w in standard_suite() {
            let (kernels, _) = build_dummy(w.as_ref());
            assert!(!kernels.is_empty(), "{} has no kernels", w.name());
            let total_blocks: usize = kernels.iter().map(|k| k.num_blocks()).sum();
            assert!(total_blocks > 0, "{} has no thread blocks", w.name());
        }
    }
}
