//! `bfs` (Rodinia): breadth-first search over an irregular graph.
//!
//! The paper lists "random page access pattern" among the behaviours
//! its suite covers; bfs is the canonical case. Each level kernel
//! scans the frontier mask sequentially but chases edges at
//! data-dependent (modelled: seeded-random) offsets in the adjacency
//! arrays, revisiting pages across levels.

use uvm_types::rng::{Rng, SmallRng};

use uvm_gpu::{Access, KernelSpec, ThreadBlockSpec};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};

use crate::backprop::slice;
use crate::{page_addr, Workload};

/// The bfs workload. Default footprint = 17 MB.
#[derive(Clone, Debug)]
pub struct Bfs {
    /// Pages of the node (row-offset) array.
    pub node_pages: u64,
    /// Pages of the edge array.
    pub edge_pages: u64,
    /// Pages of the visited/frontier mask.
    pub mask_pages: u64,
    /// Pages of the cost (distance) array.
    pub cost_pages: u64,
    /// BFS levels (kernel launches).
    pub levels: u64,
    /// Thread blocks per level.
    pub thread_blocks: u64,
    /// Frontier nodes expanded per thread block per level.
    pub expansions_per_block: u64,
    /// Seed for the data-dependent edge offsets.
    pub seed: u64,
}

impl Default for Bfs {
    fn default() -> Self {
        Bfs {
            node_pages: 1024, // 4 MB
            edge_pages: 2048, // 8 MB
            mask_pages: 256,  // 1 MB
            cost_pages: 1024, // 4 MB
            levels: 8,
            thread_blocks: 32,
            expansions_per_block: 64,
            seed: 0xbf5,
        }
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let nodes = malloc(PAGE_SIZE * self.node_pages);
        let edges = malloc(PAGE_SIZE * self.edge_pages);
        let mask = malloc(PAGE_SIZE * self.mask_pages);
        let cost = malloc(PAGE_SIZE * self.cost_pages);
        let mut rng = SmallRng::seed_from_u64(self.seed);

        let mut kernels = Vec::with_capacity(self.levels as usize);
        for level in 0..self.levels {
            let mut k = KernelSpec::new(format!("bfs_level{level}"));
            for tb in 0..self.thread_blocks {
                // One thread per node: every level densely scans this
                // block's slice of the node array and frontier mask
                // (Rodinia's kernel reads graph_nodes[tid] and
                // frontier[tid] unconditionally).
                let (nlo, nhi) = slice(self.node_pages, self.thread_blocks, tb);
                let mut accesses: Vec<Access> = Vec::new();
                for p in nlo..nhi {
                    accesses.push(Access::read(page_addr(nodes, p)));
                    accesses.push(Access::read(page_addr(
                        mask,
                        p * self.mask_pages / self.node_pages,
                    )));
                }
                // Frontier expansion for active nodes of this slice: a
                // node's CSR edge list is a short contiguous run at a
                // data-dependent (modelled: random) offset; cost and
                // mask updates land at the node's own index.
                for _ in 0..self.expansions_per_block {
                    let n = rng.gen_range(nlo..nhi);
                    let e = rng.gen_range(0..self.edge_pages.saturating_sub(2).max(1));
                    accesses.push(Access::read(page_addr(edges, e)));
                    accesses.push(Access::read(page_addr(
                        edges,
                        (e + 1).min(self.edge_pages - 1),
                    )));
                    accesses.push(Access::write(page_addr(
                        cost,
                        n * self.cost_pages / self.node_pages,
                    )));
                    accesses.push(Access::write(page_addr(
                        mask,
                        n * self.mask_pages / self.node_pages,
                    )));
                }
                k.push_block(ThreadBlockSpec::from_accesses(accesses));
            }
            kernels.push(k);
        }
        kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::build_dummy;

    #[test]
    fn level_count_and_footprint() {
        let (kernels, fp) = build_dummy(&Bfs::default());
        assert_eq!(kernels.len(), 8);
        assert_eq!(fp, Bytes::mib(17));
    }

    #[test]
    fn deterministic_across_builds() {
        let pages = |w: &Bfs| -> Vec<u64> {
            let (kernels, _) = build_dummy(w);
            kernels
                .into_iter()
                .flat_map(|k| k.into_blocks())
                .flat_map(|b| b.into_accesses())
                .map(|a| a.page().index())
                .collect()
        };
        assert_eq!(pages(&Bfs::default()), pages(&Bfs::default()));
        // A different seed gives a different edge-chase sequence.
        let other = Bfs {
            seed: 99,
            ..Bfs::default()
        };
        assert_ne!(pages(&Bfs::default()), pages(&other));
    }

    #[test]
    fn edge_accesses_are_spread_widely() {
        let (kernels, _) = build_dummy(&Bfs::default());
        let mut edge_pages = std::collections::HashSet::new();
        // Edges allocation starts right after the 4 MB node array.
        let edge_lo = 1024;
        let edge_hi = edge_lo + 2048;
        for k in kernels {
            for b in k.into_blocks() {
                for a in b.into_accesses() {
                    let p = a.page().index();
                    if (edge_lo..edge_hi).contains(&p) {
                        edge_pages.insert(p);
                    }
                }
            }
        }
        // 8 levels x 32 TBs x 64 expansions = 16384 draws over 2048
        // pages: nearly all pages are hit at least once.
        assert!(edge_pages.len() > 1800, "{} pages", edge_pages.len());
    }
}
