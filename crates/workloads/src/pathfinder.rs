//! `pathfinder` (Rodinia): dynamic-programming grid traversal.
//!
//! The paper classifies pathfinder, like backprop, as *streaming*: the
//! kernel walks the cost grid one row per iteration and never returns
//! to a row (Sec. 7.1). Only the two small ping-pong result rows are
//! reused, so the benchmark is insensitive to eviction policy and to
//! over-subscription.

use uvm_gpu::{Access, KernelSpec, ThreadBlockSpec};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};

use crate::backprop::slice;
use crate::{page_addr, Workload};

/// The pathfinder workload. Default footprint ≈ 14 MB.
#[derive(Clone, Debug)]
pub struct Pathfinder {
    /// Rows of the wall (cost) grid; one kernel launch per row.
    pub rows: u64,
    /// 4 KB pages per row (columns / 1024 ints).
    pub row_pages: u64,
    /// Thread blocks per kernel launch.
    pub thread_blocks: u64,
}

impl Default for Pathfinder {
    fn default() -> Self {
        Pathfinder {
            rows: 12,
            row_pages: 256, // 1 MB per row
            thread_blocks: 32,
        }
    }
}

impl Workload for Pathfinder {
    fn name(&self) -> &'static str {
        "pathfinder"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let wall = malloc(PAGE_SIZE * self.rows * self.row_pages);
        let result_a = malloc(PAGE_SIZE * self.row_pages);
        let result_b = malloc(PAGE_SIZE * self.row_pages);

        let mut kernels = Vec::with_capacity(self.rows as usize);
        for row in 0..self.rows {
            // Ping-pong the result rows across iterations.
            let (src, dst) = if row % 2 == 0 {
                (result_a, result_b)
            } else {
                (result_b, result_a)
            };
            let mut k = KernelSpec::new(format!("pathfinder_row{row}"));
            for tb in 0..self.thread_blocks {
                let (lo, hi) = slice(self.row_pages, self.thread_blocks, tb);
                let row_base = row * self.row_pages;
                let accesses = (lo..hi).flat_map(move |p| {
                    [
                        Access::read(page_addr(wall, row_base + p)),
                        Access::read(page_addr(src, p)),
                        Access::write(page_addr(dst, p)),
                    ]
                });
                k.push_block(ThreadBlockSpec::from_accesses(accesses));
            }
            kernels.push(k);
        }
        kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::build_dummy;
    use std::collections::HashMap;

    #[test]
    fn one_kernel_per_row() {
        let (kernels, fp) = build_dummy(&Pathfinder::default());
        assert_eq!(kernels.len(), 12);
        assert_eq!(fp, Bytes::mib(12) + Bytes::mib(2));
    }

    #[test]
    fn wall_pages_visited_once_results_reused() {
        let p = Pathfinder::default();
        let (kernels, _) = build_dummy(&p);
        let mut visits: HashMap<u64, u64> = HashMap::new();
        for k in kernels {
            for b in k.into_blocks() {
                for a in b.into_accesses() {
                    *visits.entry(a.page().index()).or_insert(0) += 1;
                }
            }
        }
        // Wall pages (first allocation) are streamed exactly once.
        let wall_pages = p.rows * p.row_pages;
        for pg in 0..wall_pages {
            assert_eq!(visits.get(&pg).copied(), Some(1), "wall page {pg}");
        }
        // Result rows are revisited across iterations (allocations are
        // 2 MB-aligned in the dummy allocator: wall occupies 12 MB).
        let result_a_first = (Bytes::mib(12).bytes()) / PAGE_SIZE.bytes();
        assert!(visits.get(&result_a_first).copied().unwrap_or(0) >= 6);
    }
}
