//! `backprop` (Rodinia): neural-network training layer.
//!
//! The paper classifies backprop as a *streaming* benchmark: it scans
//! large arrays in parts sequentially and does not reuse data across
//! iterations (Sec. 7.1), which makes it insensitive to the choice of
//! eviction policy and to the over-subscription percentage.
//!
//! Two kernel launches, as in Rodinia: `layerforward` streams the
//! input units and the input→hidden weight matrix; `adjust_weights`
//! streams a second (gradient) weight matrix. No page is visited by
//! more than one kernel.

use uvm_gpu::{Access, KernelSpec, ThreadBlockSpec};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};

use crate::{page_addr, Workload};

/// The backprop workload. Default footprint ≈ 18 MB.
#[derive(Clone, Debug)]
pub struct Backprop {
    /// 4 KB pages of the input-unit vector.
    pub input_pages: u64,
    /// Pages of the input→hidden weight matrix (read by kernel 1).
    pub weights_in_pages: u64,
    /// Pages of the weight-gradient matrix (written by kernel 2).
    pub weights_out_pages: u64,
    /// Thread blocks per kernel.
    pub thread_blocks: u64,
}

impl Default for Backprop {
    fn default() -> Self {
        Backprop {
            input_pages: 512,        // 2 MB
            weights_in_pages: 2048,  // 8 MB
            weights_out_pages: 2048, // 8 MB
            thread_blocks: 64,
        }
    }
}

impl Workload for Backprop {
    fn name(&self) -> &'static str {
        "backprop"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let input = malloc(PAGE_SIZE * self.input_pages);
        let w_in = malloc(PAGE_SIZE * self.weights_in_pages);
        let w_out = malloc(PAGE_SIZE * self.weights_out_pages);

        // Kernel 1: each thread block streams its slice of the input
        // units and its rows of the weight matrix.
        let mut k1 = KernelSpec::new("backprop_layerforward");
        for tb in 0..self.thread_blocks {
            let (in_lo, in_hi) = slice(self.input_pages, self.thread_blocks, tb);
            let (w_lo, w_hi) = slice(self.weights_in_pages, self.thread_blocks, tb);
            let reads = (in_lo..in_hi)
                .map(move |p| Access::read(page_addr(input, p)))
                .chain((w_lo..w_hi).map(move |p| Access::read(page_addr(w_in, p))));
            k1.push_block(ThreadBlockSpec::from_accesses(reads));
        }

        // Kernel 2: stream-write the gradient matrix.
        let mut k2 = KernelSpec::new("backprop_adjust_weights");
        for tb in 0..self.thread_blocks {
            let (lo, hi) = slice(self.weights_out_pages, self.thread_blocks, tb);
            let writes = (lo..hi).map(move |p| Access::write(page_addr(w_out, p)));
            k2.push_block(ThreadBlockSpec::from_accesses(writes));
        }
        vec![k1, k2]
    }
}

/// Splits `total` items into `parts` contiguous slices; returns the
/// `idx`-th slice as `(lo, hi)`.
pub(crate) fn slice(total: u64, parts: u64, idx: u64) -> (u64, u64) {
    let base = total / parts;
    let rem = total % parts;
    let lo = idx * base + idx.min(rem);
    let len = base + u64::from(idx < rem);
    (lo, lo + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::build_dummy;
    use std::collections::HashSet;

    #[test]
    fn slices_partition_exactly() {
        for (total, parts) in [(100u64, 7u64), (64, 64), (10, 3), (5, 8)] {
            let mut covered = 0;
            let mut prev_hi = 0;
            for i in 0..parts {
                let (lo, hi) = slice(total, parts, i);
                assert_eq!(lo, prev_hi, "slices must be contiguous");
                covered += hi - lo;
                prev_hi = hi;
            }
            assert_eq!(covered, total);
        }
    }

    #[test]
    fn two_streaming_kernels_no_page_reuse() {
        let (kernels, fp) = build_dummy(&Backprop::default());
        assert_eq!(kernels.len(), 2);
        assert_eq!(fp, Bytes::mib(18));
        // No page is accessed twice across the whole run.
        let mut seen = HashSet::new();
        for k in kernels {
            for b in k.into_blocks() {
                for a in b.into_accesses() {
                    assert!(seen.insert(a.page()), "page {} reused", a.page());
                }
            }
        }
        // Every page of the 18 MB footprint is touched exactly once.
        assert_eq!(seen.len() as u64, 512 + 2048 + 2048);
    }

    #[test]
    fn kernel2_is_write_only() {
        let (kernels, _) = build_dummy(&Backprop::default());
        let k2 = kernels.into_iter().nth(1).unwrap();
        for b in k2.into_blocks() {
            for a in b.into_accesses() {
                assert!(a.write);
            }
        }
    }
}
