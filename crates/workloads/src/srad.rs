//! `srad` (Rodinia): speckle-reducing anisotropic diffusion.
//!
//! An iterative two-kernel image filter over six equally sized arrays
//! (image `J`, diffusion coefficient `c`, and the four directional
//! derivatives). Every iteration touches the entire 24 MB working set,
//! making srad strongly sensitive to eviction policy under
//! over-subscription, like hotspot but with a larger footprint and two
//! kernels per iteration.

use uvm_gpu::{Access, KernelSpec, ThreadBlockSpec};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};

use crate::{page_addr, Workload};

/// The srad workload. Default footprint = 24 MB.
#[derive(Clone, Debug)]
pub struct Srad {
    /// Image rows; one 4 KB page per row.
    pub rows: u64,
    /// Diffusion iterations (two kernel launches each).
    pub iterations: u64,
    /// Rows per thread block.
    pub rows_per_block: u64,
}

impl Default for Srad {
    fn default() -> Self {
        Srad {
            rows: 1024, // 4 MB per array, six arrays
            iterations: 6,
            rows_per_block: 16,
        }
    }
}

impl Workload for Srad {
    fn name(&self) -> &'static str {
        "srad"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let array = PAGE_SIZE * self.rows;
        let j = malloc(array);
        let c = malloc(array);
        let dn = malloc(array);
        let ds = malloc(array);
        let dw = malloc(array);
        let de = malloc(array);

        let rows = self.rows;
        let mut kernels = Vec::with_capacity(2 * self.iterations as usize);
        for it in 0..self.iterations {
            // Kernel 1: derivatives + coefficient from the image.
            let mut k1 = KernelSpec::new(format!("srad_k1_iter{it}"));
            let mut row = 0;
            while row < rows {
                let hi = (row + self.rows_per_block).min(rows);
                let accesses = (row..hi).flat_map(move |r| {
                    let up = r.saturating_sub(1);
                    let down = (r + 1).min(rows - 1);
                    [
                        Access::read(page_addr(j, up)),
                        Access::read(page_addr(j, r)),
                        Access::read(page_addr(j, down)),
                        Access::write(page_addr(dn, r)),
                        Access::write(page_addr(ds, r)),
                        Access::write(page_addr(dw, r)),
                        Access::write(page_addr(de, r)),
                        Access::write(page_addr(c, r)),
                    ]
                });
                k1.push_block(ThreadBlockSpec::from_accesses(accesses));
                row = hi;
            }
            kernels.push(k1);

            // Kernel 2: update the image from coefficient + derivatives.
            let mut k2 = KernelSpec::new(format!("srad_k2_iter{it}"));
            let mut row = 0;
            while row < rows {
                let hi = (row + self.rows_per_block).min(rows);
                let accesses = (row..hi).flat_map(move |r| {
                    let down = (r + 1).min(rows - 1);
                    [
                        Access::read(page_addr(c, r)),
                        Access::read(page_addr(c, down)),
                        Access::read(page_addr(dn, r)),
                        Access::read(page_addr(ds, r)),
                        Access::read(page_addr(dw, r)),
                        Access::read(page_addr(de, r)),
                        Access::write(page_addr(j, r)),
                    ]
                });
                k2.push_block(ThreadBlockSpec::from_accesses(accesses));
                row = hi;
            }
            kernels.push(k2);
        }
        kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::build_dummy;

    #[test]
    fn two_kernels_per_iteration() {
        let (kernels, fp) = build_dummy(&Srad::default());
        assert_eq!(kernels.len(), 12);
        assert_eq!(fp, Bytes::mib(24));
        assert!(kernels[0].name().starts_with("srad_k1"));
        assert!(kernels[1].name().starts_with("srad_k2"));
    }

    #[test]
    fn k1_writes_derivatives_k2_writes_image() {
        let s = Srad {
            rows: 32,
            iterations: 1,
            rows_per_block: 32,
        };
        let (kernels, _) = build_dummy(&s);
        let mut iter = kernels.into_iter();
        let k1 = iter.next().unwrap();
        let writes_k1: std::collections::HashSet<u64> = k1
            .into_blocks()
            .into_iter()
            .flat_map(|b| b.into_accesses())
            .filter(|a| a.write)
            .map(|a| a.page().index())
            .collect();
        // J occupies pages 0..32 (first 2 MB slot); k1 never writes it.
        assert!(writes_k1.iter().all(|&p| p >= 512));
        let k2 = iter.next().unwrap();
        let writes_k2: std::collections::HashSet<u64> = k2
            .into_blocks()
            .into_iter()
            .flat_map(|b| b.into_accesses())
            .filter(|a| a.write)
            .map(|a| a.page().index())
            .collect();
        assert!(writes_k2.iter().all(|&p| p < 32), "k2 writes only J");
    }
}
