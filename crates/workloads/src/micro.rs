//! Micro-benchmarks: the small directed access patterns used to probe
//! prefetcher semantics (the paper reverse-engineered the NVIDIA
//! prefetcher with exactly this kind of kernel, Sec. 3.3).

use uvm_gpu::{Access, KernelSpec, ThreadBlockSpec};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};

use crate::{page_addr, Workload};

/// Touch every `stride_pages`-th page once, `count` times — the
/// pattern of the paper's Fig. 2(a) micro-benchmark when
/// `stride_pages = 32` (first page of every second 64 KB block).
#[derive(Clone, Debug)]
pub struct StridedTouch {
    /// Total pages in the single allocation.
    pub alloc_pages: u64,
    /// Stride between touched pages.
    pub stride_pages: u64,
    /// Number of strided touches.
    pub count: u64,
    /// First touched page.
    pub start_page: u64,
}

impl Default for StridedTouch {
    fn default() -> Self {
        StridedTouch {
            alloc_pages: 128, // 512 KB, the Fig. 2 chunk
            stride_pages: 32,
            count: 4,
            start_page: 16,
        }
    }
}

impl Workload for StridedTouch {
    fn name(&self) -> &'static str {
        "micro_strided_touch"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let base = malloc(PAGE_SIZE * self.alloc_pages);
        let (start, stride) = (self.start_page, self.stride_pages);
        let accesses =
            (0..self.count).map(move |i| Access::read(page_addr(base, start + i * stride)));
        vec![KernelSpec::new("strided_touch").with_block(ThreadBlockSpec::from_accesses(accesses))]
    }
}

/// Sweep `pages` pages sequentially, `repeats` times (one kernel per
/// sweep) — the repetitive-linear pattern that breaks LRU (Sec. 5.3).
#[derive(Clone, Debug)]
pub struct LinearSweep {
    /// Pages in the allocation.
    pub pages: u64,
    /// Number of full sweeps (kernel launches).
    pub repeats: u64,
    /// Thread blocks per sweep.
    pub thread_blocks: u64,
}

impl Default for LinearSweep {
    fn default() -> Self {
        LinearSweep {
            pages: 1024,
            repeats: 4,
            thread_blocks: 16,
        }
    }
}

impl Workload for LinearSweep {
    fn name(&self) -> &'static str {
        "micro_linear_sweep"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let base = malloc(PAGE_SIZE * self.pages);
        let per_tb = self.pages.div_ceil(self.thread_blocks);
        (0..self.repeats)
            .map(|rep| {
                let mut k = KernelSpec::new(format!("sweep{rep}"));
                let mut lo = 0;
                while lo < self.pages {
                    let hi = (lo + per_tb).min(self.pages);
                    let accesses = (lo..hi).map(move |p| Access::read(page_addr(base, p)));
                    k.push_block(ThreadBlockSpec::from_accesses(accesses));
                    lo = hi;
                }
                k
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::build_dummy;

    #[test]
    fn strided_touch_emits_expected_pages() {
        let (kernels, _) = build_dummy(&StridedTouch::default());
        assert_eq!(kernels.len(), 1);
        let pages: Vec<u64> = kernels
            .into_iter()
            .flat_map(|k| k.into_blocks())
            .flat_map(|b| b.into_accesses())
            .map(|a| a.page().index())
            .collect();
        // Default: first page of blocks 1, 3, 5, 7 (Fig. 2a's pattern).
        assert_eq!(pages, vec![16, 48, 80, 112]);
    }

    #[test]
    fn linear_sweep_covers_all_pages_each_repeat() {
        let sweep = LinearSweep {
            pages: 100,
            repeats: 3,
            thread_blocks: 7,
        };
        let (kernels, _) = build_dummy(&sweep);
        assert_eq!(kernels.len(), 3);
        for k in kernels {
            let mut pages: Vec<u64> = k
                .into_blocks()
                .into_iter()
                .flat_map(|b| b.into_accesses())
                .map(|a| a.page().index())
                .collect();
            pages.sort_unstable();
            assert_eq!(pages, (0..100).collect::<Vec<_>>());
        }
    }
}
