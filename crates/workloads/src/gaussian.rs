//! `gaussian` (Rodinia): Gaussian elimination.
//!
//! One kernel launch per elimination step. Step `k` reads the pivot
//! row and reads/writes every remaining row below it, so the active
//! region shrinks as elimination proceeds: early steps sweep almost
//! the whole matrix (strong reuse between consecutive steps), late
//! steps touch only the tail. Repeated sweeps over a shrinking region
//! give gaussian its intermediate sensitivity to eviction policy.

use uvm_gpu::{Access, KernelSpec, ThreadBlockSpec};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};

use crate::{page_addr, Workload};

/// The gaussian-elimination workload. Default footprint = 6 MB.
#[derive(Clone, Debug)]
pub struct Gaussian {
    /// Matrix rows; one 4 KB page per row (1024 f32 columns).
    pub rows: u64,
    /// Rows eliminated per step (one kernel launch per step).
    pub rows_per_step: u64,
    /// Rows per thread block.
    pub rows_per_block: u64,
}

impl Default for Gaussian {
    fn default() -> Self {
        Gaussian {
            rows: 1536, // 6 MB
            rows_per_step: 32,
            rows_per_block: 16,
        }
    }
}

impl Workload for Gaussian {
    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let matrix = malloc(PAGE_SIZE * self.rows);
        let steps = self.rows / self.rows_per_step;

        let mut kernels = Vec::with_capacity(steps as usize);
        for step in 0..steps {
            let pivot = step * self.rows_per_step;
            let mut k = KernelSpec::new(format!("gaussian_step{step}"));
            let mut row = pivot + 1;
            while row < self.rows {
                let hi = (row + self.rows_per_block).min(self.rows);
                // The pivot row is staged into shared memory once per
                // thread block (Rodinia's Fan2 tiling), then each row
                // of the block's tile is read and updated in place.
                let accesses = std::iter::once(Access::read(page_addr(matrix, pivot))).chain(
                    (row..hi).flat_map(move |r| {
                        [
                            Access::read(page_addr(matrix, r)),
                            Access::write(page_addr(matrix, r)),
                        ]
                    }),
                );
                k.push_block(ThreadBlockSpec::from_accesses(accesses));
                row = hi;
            }
            kernels.push(k);
        }
        kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::build_dummy;

    #[test]
    fn one_kernel_per_step_and_footprint() {
        let (kernels, fp) = build_dummy(&Gaussian::default());
        assert_eq!(kernels.len(), 48);
        assert_eq!(fp, Bytes::mib(6));
    }

    #[test]
    fn active_region_shrinks() {
        let g = Gaussian {
            rows: 128,
            rows_per_step: 32,
            rows_per_block: 16,
        };
        let (kernels, _) = build_dummy(&g);
        let counts: Vec<usize> = kernels
            .into_iter()
            .map(|k| {
                k.into_blocks()
                    .into_iter()
                    .flat_map(|b| b.into_accesses())
                    .count()
            })
            .collect();
        assert_eq!(counts.len(), 4);
        for w in counts.windows(2) {
            assert!(w[1] < w[0], "later steps touch fewer rows");
        }
    }

    #[test]
    fn pivot_row_read_by_every_block_of_a_step() {
        let g = Gaussian {
            rows: 64,
            rows_per_step: 32,
            rows_per_block: 16,
        };
        let (kernels, _) = build_dummy(&g);
        // Step 1: pivot is row 32.
        let k = kernels.into_iter().nth(1).unwrap();
        for b in k.into_blocks() {
            let pages: Vec<u64> = b.into_accesses().map(|a| a.page().index()).collect();
            assert!(pages.contains(&32), "block must read the pivot row");
        }
    }
}
